// Tests for the model checker: verdicts on every protocol (the paper's
// method end to end), counterexample validity, sequential/parallel
// agreement, and resource-limit handling.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "protocol/directory.hpp"
#include "protocol/get_shared_toy.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"
#include "trace/sc_oracle.hpp"

namespace scv {
namespace {

// --------------------------------------------------------- SC verdicts

TEST(Verify, SerialMemoryIsSc) {
  SerialMemory proto(2, 2, 1);
  const McResult r = verify_sc(proto);
  EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
  EXPECT_TRUE(r.counterexample.empty());
}

TEST(Verify, MsiIsSc) {
  MsiBus proto(2, 1, 1);
  const McResult r = verify_sc(proto);
  EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
}

TEST(Verify, DirectoryIsSc) {
  DirectoryProtocol proto(2, 1, 1);
  const McResult r = verify_sc(proto);
  EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
}

TEST(Verify, LazyCachingIsSc) {
  LazyCaching proto(2, 1, 1, 1, 2);
  const McResult r = verify_sc(proto);
  EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
}

TEST(Verify, SingleProcessorWriteBufferIsSc) {
  // With one processor the (no-forwarding) write buffer still violates SC
  // — the processor can read ⊥ from memory after its own buffered store —
  // while the *forwarding* buffer is SC for p=1.
  WriteBuffer broken(1, 1, 1, 1, false);
  EXPECT_EQ(verify_sc(broken).verdict, McVerdict::Violation);
  WriteBuffer fwd(1, 2, 1, 2, true);
  EXPECT_EQ(verify_sc(fwd).verdict, McVerdict::Verified);
}

// ------------------------------------------------------- SC violations

TEST(Verify, WriteBufferShortestCounterexampleIsOwnStaleRead) {
  // Without forwarding, the shortest violation is a processor missing its
  // *own* buffered store: ST(P,B,1) then LD(P,B,⊥) — two operations.
  WriteBuffer proto(2, 2, 1, 1, false);
  const McResult r = verify_sc(proto);
  ASSERT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  ASSERT_EQ(r.counterexample.size(), 2u);
  EXPECT_NE(r.reason.find("cycle"), std::string::npos);
}

TEST(Verify, ForwardingBufferFailsWithStoreBufferingLitmus) {
  // Forwarding fixes same-block stale reads, so BFS must dig out the
  // classic 4-operation store-buffering interleaving instead.
  WriteBuffer proto(2, 2, 1, 1, true);
  const McResult r = verify_sc(proto);
  ASSERT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  EXPECT_EQ(r.counterexample.size(), 4u);
}

TEST(Verify, GetSharedToyIsRejected) {
  // Stale views make the toy's witness graphs cyclic: with multiple
  // values the protocol genuinely violates SC.
  GetSharedToy proto(2, 1, 2, 2);
  const McResult r = verify_sc(proto);
  EXPECT_EQ(r.verdict, McVerdict::Violation) << r.summary();
}

TEST(Verify, CounterexampleTraceFailsTheOracle) {
  WriteBuffer proto(2, 2, 2, 1, false);
  const McResult r = verify_sc(proto);
  ASSERT_EQ(r.verdict, McVerdict::Violation);
  // Rebuild the trace from the counterexample action names?  No — use the
  // structure: every emitted NodeDesc label is a trace operation.
  Trace trace;
  for (const CounterexampleStep& step : r.counterexample) {
    for (const Symbol& s : step.emitted) {
      if (const auto* nd = std::get_if<NodeDesc>(&s)) {
        ASSERT_TRUE(nd->label.has_value());
        trace.push_back(*nd->label);
      }
    }
  }
  ASSERT_FALSE(trace.empty());
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(trace)) << to_string(trace);
}

// ------------------------------------------------------------- limits

TEST(Verify, StateLimitIsRespected) {
  MsiBus proto(2, 2, 2);
  McOptions opt;
  opt.max_states = 1000;
  const McResult r = verify_sc(proto, opt);
  EXPECT_EQ(r.verdict, McVerdict::StateLimit);
  EXPECT_GE(r.states, 1000u);
  EXPECT_LT(r.states, 5000u);
}

TEST(Verify, DepthLimitIsRespected) {
  SerialMemory proto(2, 1, 2);
  McOptions opt;
  opt.max_depth = 2;
  const McResult r = verify_sc(proto, opt);
  EXPECT_EQ(r.verdict, McVerdict::StateLimit);
  EXPECT_LE(r.depth, 2u);
}

TEST(Verify, TinyObserverPoolReportsBandwidthExceeded) {
  MsiBus proto(2, 2, 2);
  McOptions opt;
  opt.observer.pool_size = 3;
  const McResult r = verify_sc(proto, opt);
  EXPECT_EQ(r.verdict, McVerdict::BandwidthExceeded) << r.summary();
  EXPECT_FALSE(r.counterexample.empty());
}

// ------------------------------------------------- protocol-only mode

TEST(Verify, ProtocolOnlyModeCountsBareStates) {
  SerialMemory proto(2, 2, 2);
  McOptions opt;
  opt.protocol_only = true;
  const McResult r = model_check(proto, opt);
  EXPECT_EQ(r.verdict, McVerdict::Verified);
  EXPECT_EQ(r.states, 9u);  // {⊥,1,2}^2
}

TEST(Verify, ObserverOverheadIsFiniteMultiplier) {
  SerialMemory proto(2, 1, 1);
  McOptions bare;
  bare.protocol_only = true;
  const McResult rb = model_check(proto, bare);
  const McResult rf = model_check(proto, {});
  EXPECT_EQ(rb.verdict, McVerdict::Verified);
  EXPECT_EQ(rf.verdict, McVerdict::Verified);
  EXPECT_GT(rf.states, rb.states);
}

// --------------------------------------------------------- parallel BFS

TEST(Parallel, AgreesWithSequentialOnVerifiedProtocol) {
  MsiBus proto(2, 1, 1);
  McOptions seq;
  const McResult rs = model_check(proto, seq);
  McOptions par;
  par.threads = 3;
  const McResult rp = model_check(proto, par);
  EXPECT_EQ(rs.verdict, rp.verdict);
  EXPECT_EQ(rs.states, rp.states);
  EXPECT_EQ(rs.depth, rp.depth);
}

TEST(Parallel, FindsViolations) {
  WriteBuffer proto(2, 2, 1, 1, true);
  McOptions par;
  par.threads = 2;
  const McResult r = model_check(proto, par);
  ASSERT_EQ(r.verdict, McVerdict::Violation);
  // Parallel exploration is level-synchronized, so the counterexample is
  // still depth-minimal: the 4-operation store-buffering litmus.
  EXPECT_EQ(r.counterexample.size(), 4u);
}

TEST(Parallel, ProtocolOnlyCountsMatch) {
  SerialMemory proto(2, 2, 2);
  McOptions opt;
  opt.protocol_only = true;
  opt.threads = 4;
  const McResult r = model_check(proto, opt);
  EXPECT_EQ(r.states, 9u);
}

TEST(Parallel, SequentialParityUnderTightStateLimit) {
  // Sequential and parallel runs must report the same verdict and state
  // count when the state budget bites: both enforce max_states per
  // insertion (the parallel path used to check only between BFS levels).
  const auto parity = [](const Protocol& proto, std::size_t max_states) {
    McOptions seq;
    seq.max_states = max_states;
    McOptions par = seq;
    par.threads = 3;
    const McResult rs = model_check(proto, seq);
    const McResult rp = model_check(proto, par);
    EXPECT_EQ(rs.verdict, rp.verdict)
        << proto.name() << ": " << rs.summary() << " vs " << rp.summary();
    EXPECT_EQ(rs.states, rp.states) << proto.name();
    EXPECT_EQ(rs.depth, rp.depth) << proto.name();
    // Regression for the parallel StateLimit path dropping stats.
    EXPECT_GT(rp.peak_live_nodes, 0u) << proto.name();
    EXPECT_GT(rp.transitions, 0u) << proto.name();
  };
  {
    MsiBus proto(2, 1, 1);
    parity(proto, 400);
  }
  {
    LazyCaching proto(2, 1, 1, 1, 2);
    parity(proto, 400);
  }
}

TEST(Parallel, ViolationParityOnBuggyMsi) {
  // The seeded lost-invalidation MSI bug (the same family the stream
  // mutation study in tests/test_mutation.cpp perturbs) violates SC at
  // BFS depth 6 with a 7-step counterexample.  The rewritten parallel
  // engine stays level-synchronized, so it must report the same verdict,
  // the same depth, and an equally *short* counterexample — at every
  // thread count, and in the exact_states differential mode too.
  MsiBus proto(2, 1, 1, /*lost_invalidation=*/true);
  const McResult rs = model_check(proto, {});
  ASSERT_EQ(rs.verdict, McVerdict::Violation) << rs.summary();
  EXPECT_EQ(rs.depth, 6u);
  EXPECT_EQ(rs.counterexample.size(), 7u);
  EXPECT_FALSE(rs.cycle.empty());
  for (const std::size_t threads : {2u, 4u}) {
    for (const bool exact : {false, true}) {
      McOptions par;
      par.threads = threads;
      par.exact_states = exact;
      const McResult rp = model_check(proto, par);
      EXPECT_EQ(rp.verdict, rs.verdict)
          << threads << " threads, exact=" << exact << ": " << rp.summary();
      EXPECT_EQ(rp.depth, rs.depth) << threads << " threads";
      EXPECT_EQ(rp.counterexample.size(), rs.counterexample.size())
          << threads << " threads";
      EXPECT_FALSE(rp.cycle.empty()) << threads << " threads";
    }
  }
}

TEST(Parallel, GrowthUnderPressureMatchesSequential) {
  // A deliberately tiny visited_size_hint forces the concurrent
  // fingerprint table through many abort-grow-resume cycles mid-level
  // (MsiBus(2,1,1) reaches ~39k states from the 1k-slot minimum table).
  // Full-exploration results must be identical to the organically grown
  // sequential store.
  MsiBus proto(2, 1, 1);
  McOptions seq;
  const McResult rs = model_check(proto, seq);
  ASSERT_EQ(rs.verdict, McVerdict::Verified) << rs.summary();
  McOptions par;
  par.threads = 3;
  par.visited_size_hint = 1;
  const McResult rp = model_check(proto, par);
  EXPECT_EQ(rp.verdict, rs.verdict) << rp.summary();
  EXPECT_EQ(rp.states, rs.states);
  EXPECT_EQ(rp.depth, rs.depth);
  EXPECT_EQ(rp.transitions, rs.transitions);
  EXPECT_EQ(rp.peak_frontier, rs.peak_frontier);
  EXPECT_EQ(rp.peak_live_nodes, rs.peak_live_nodes);
}

TEST(Parallel, ReportsLevelStatsAndFrontierBytes) {
  MsiBus proto(2, 1, 1);
  McOptions par;
  par.threads = 2;
  const McResult r = model_check(proto, par);
  ASSERT_EQ(r.verdict, McVerdict::Verified) << r.summary();
  ASSERT_EQ(r.level_stats.size(), r.depth);
  EXPECT_EQ(r.level_stats.front().frontier, 1u);  // the initial state
  // Every distinct state is discovered fresh at exactly one level.
  std::size_t fresh = 1;
  for (const McLevelStat& ls : r.level_stats) fresh += ls.fresh;
  EXPECT_EQ(fresh, r.states);
  EXPECT_GT(r.frontier_bytes, 0u);
}

// ------------------------------------------- fingerprint vs exact store

TEST(Verify, ExactStoreMatchesFingerprintStore) {
  // McOptions::exact_states keeps full serialized keys; verdicts and state
  // counts must match the default fingerprint store on every bundled
  // protocol family (a mismatch would expose a fingerprint collision or a
  // store bug), while the fingerprint store stays far smaller.
  const auto check = [](const Protocol& proto) {
    McOptions fp;
    McOptions exact;
    exact.exact_states = true;
    const McResult rf = model_check(proto, fp);
    const McResult re = model_check(proto, exact);
    EXPECT_EQ(rf.verdict, re.verdict)
        << proto.name() << ": " << rf.summary() << " vs " << re.summary();
    EXPECT_EQ(rf.states, re.states) << proto.name();
    EXPECT_EQ(rf.depth, re.depth) << proto.name();
    EXPECT_GT(rf.store_bytes, 0u);
    // The flat fingerprint table starts at a fixed minimum capacity, so
    // only compare footprints once the state count dwarfs it.
    if (rf.states > 1000) {
      EXPECT_GT(re.store_bytes, rf.store_bytes) << proto.name();
    }
  };
  check(SerialMemory(2, 2, 1));
  check(MsiBus(2, 1, 1));
  check(LazyCaching(2, 1, 1, 1, 2));
  check(WriteBuffer(2, 2, 1, 1, false));
}

TEST(Parallel, ExactStoreMatchesFingerprintStore) {
  MsiBus proto(2, 1, 1);
  McOptions fp;
  fp.threads = 2;
  McOptions exact = fp;
  exact.exact_states = true;
  const McResult rf = model_check(proto, fp);
  const McResult re = model_check(proto, exact);
  EXPECT_EQ(rf.verdict, re.verdict);
  EXPECT_EQ(rf.states, re.states);
  EXPECT_EQ(rf.depth, re.depth);
}

TEST(Verify, StoreStatsAreReported) {
  MsiBus proto(2, 1, 1);
  const McResult r = verify_sc(proto);
  EXPECT_GT(r.state_bytes, 0u);
  EXPECT_GT(r.store_bytes, 0u);
  EXPECT_GT(r.store_load_factor, 0.0);
  EXPECT_LE(r.store_load_factor, 1.0);
  EXPECT_GT(r.bytes_per_state(), 0.0);
}

// ---------------------------------------------------------- reporting

TEST(Verify, SummaryMentionsVerdictAndCounts) {
  SerialMemory proto(1, 1, 1);
  const McResult r = verify_sc(proto);
  const std::string s = r.summary();
  EXPECT_NE(s.find("Verified"), std::string::npos);
  EXPECT_NE(s.find("states"), std::string::npos);
}

TEST(Verify, VerdictNames) {
  EXPECT_EQ(to_string(McVerdict::Verified), "Verified");
  EXPECT_EQ(to_string(McVerdict::Violation), "Violation");
  EXPECT_EQ(to_string(McVerdict::BandwidthExceeded), "BandwidthExceeded");
  EXPECT_EQ(to_string(McVerdict::TrackingInconsistent),
            "TrackingInconsistent");
  EXPECT_EQ(to_string(McVerdict::StateLimit), "StateLimit");
}

}  // namespace
}  // namespace scv
