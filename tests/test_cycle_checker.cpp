// Tests for the finite-state cycle checker of Lemma 3.3, including the
// property it is defined by: it accepts a k-graph descriptor iff the
// described graph is acyclic — cross-checked against explicit expansion on
// thousands of random descriptors.
#include <gtest/gtest.h>

#include "checker/cycle_checker.hpp"
#include "descriptor/descriptor.hpp"
#include "util/rng.hpp"

namespace scv {
namespace {

CycleChecker::Status feed_all(CycleChecker& c,
                              const std::vector<Symbol>& symbols) {
  CycleChecker::Status st = CycleChecker::Status::Ok;
  for (const Symbol& s : symbols) st = c.feed(s);
  return st;
}

TEST(CycleChecker, AcceptsChain) {
  CycleChecker c(2);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2},
                         NodeDesc{3}, EdgeDesc{2, 3}}),
            CycleChecker::Status::Ok);
  EXPECT_FALSE(c.rejected());
}

TEST(CycleChecker, RejectsDirectCycle) {
  CycleChecker c(2);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2},
                         EdgeDesc{2, 1}}),
            CycleChecker::Status::Reject);
  EXPECT_TRUE(c.rejected());
}

TEST(CycleChecker, RejectsSelfLoop) {
  CycleChecker c(1);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, EdgeDesc{1, 1}}),
            CycleChecker::Status::Reject);
  EXPECT_NE(c.reject_reason().find("self-loop"), std::string::npos);
}

TEST(CycleChecker, StaysRejected) {
  CycleChecker c(1);
  (void)feed_all(c, {NodeDesc{1}, EdgeDesc{1, 1}});
  EXPECT_EQ(c.feed(NodeDesc{2}), CycleChecker::Status::Reject);
}

TEST(CycleChecker, ContractionPreservesCyclesAcrossRetirement) {
  // 1 -> 2 -> 3, retire node with ID 2 (recycle the ID), then an edge
  // 3 -> 1 closes the cycle through the contracted 1 -> 3 path.
  CycleChecker c(2);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, NodeDesc{2}, NodeDesc{3},
                         EdgeDesc{1, 2}, EdgeDesc{2, 3}, NodeDesc{2}}),
            CycleChecker::Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{3, 1}), CycleChecker::Status::Reject);
}

TEST(CycleChecker, ContractionDropsDeadPaths) {
  // Retiring an endpoint with no outgoing edges must not invent paths.
  CycleChecker c(2);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2},
                         NodeDesc{2},  // retire old node 2 (no out-edges)
                         EdgeDesc{2, 1}}),
            CycleChecker::Status::Ok);  // new node 2 -> 1 is fine
}

TEST(CycleChecker, AddIdAliasFollowsNode) {
  CycleChecker c(3);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, AddId{1, 2}, NodeDesc{3},
                         EdgeDesc{3, 2}}),
            CycleChecker::Status::Ok);
  // Edge 1 -> 3 closes 3 -> (2=1) -> 3? Node with IDs {1,2} has edge from
  // node 3; adding edge (1,3) makes node{1,2} -> node{3} while node{3} ->
  // node{1,2} exists: cycle.
  EXPECT_EQ(c.feed(EdgeDesc{1, 3}), CycleChecker::Status::Reject);
}

TEST(CycleChecker, StrippingOneAliasKeepsNodeAlive) {
  CycleChecker c(3);
  // Node A = {1,2}; rebinding ID 2 to a new node must not retire A.
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, AddId{1, 2}, NodeDesc{2},
                         EdgeDesc{1, 2}}),
            CycleChecker::Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{2, 1}), CycleChecker::Status::Reject);
}

TEST(CycleChecker, DanglingAddIdRejected) {
  // add-ID whose `existing` is neither bound nor the reserved null ID
  // (k+1) is a malformed descriptor: the alias would silently vanish.
  CycleChecker c(3);
  EXPECT_EQ(c.feed(NodeDesc{1}), CycleChecker::Status::Ok);
  EXPECT_EQ(c.feed(AddId{2, 1}), CycleChecker::Status::Reject);
  EXPECT_NE(c.reject_reason().find("not bound"), std::string::npos);
}

TEST(CycleChecker, NullIdReleaseStillAccepted) {
  CycleChecker c(3);  // reserved null ID = 4
  EXPECT_EQ(c.feed(NodeDesc{1}), CycleChecker::Status::Ok);
  EXPECT_EQ(c.feed(AddId{4, 1}), CycleChecker::Status::Ok);
  EXPECT_EQ(c.active_nodes(), 0u);
}

TEST(CycleChecker, UnboundEdgeRejected) {
  CycleChecker c(2);
  EXPECT_EQ(feed_all(c, {NodeDesc{1}, EdgeDesc{1, 3}}),
            CycleChecker::Status::Reject);
  EXPECT_NE(c.reject_reason().find("not bound"), std::string::npos);
}

TEST(CycleChecker, IdOutOfRangeRejected) {
  CycleChecker c(2);
  EXPECT_EQ(c.feed(NodeDesc{4}), CycleChecker::Status::Reject);
}

TEST(CycleChecker, ActiveNodeCountIsBounded) {
  CycleChecker c(3);
  for (GraphId id = 1; id <= 4; ++id) {
    ASSERT_EQ(c.feed(NodeDesc{id}), CycleChecker::Status::Ok);
  }
  EXPECT_EQ(c.active_nodes(), 4u);
  // Recycling keeps the count at k+1.
  for (int round = 0; round < 10; ++round) {
    for (GraphId id = 1; id <= 4; ++id) {
      ASSERT_EQ(c.feed(NodeDesc{id}), CycleChecker::Status::Ok);
      EXPECT_LE(c.active_nodes(), 4u);
    }
  }
}

TEST(CycleChecker, SerializationDistinguishesStates) {
  CycleChecker a(2), b(2);
  (void)feed_all(a, {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2}});
  (void)feed_all(b, {NodeDesc{1}, NodeDesc{2}});
  ByteWriter wa, wb;
  a.serialize(wa);
  b.serialize(wb);
  EXPECT_NE(wa.data(), wb.data());
}

// ------------------------- the defining property, on random descriptors

std::vector<Symbol> random_descriptor(Xoshiro256& rng, std::size_t k,
                                      std::size_t length) {
  std::vector<Symbol> symbols;
  std::vector<bool> bound(k + 2, false);
  std::vector<GraphId> live;
  for (std::size_t i = 0; i < length; ++i) {
    const auto roll = rng.below(10);
    if (roll < 4 || live.size() < 2) {
      const auto id = static_cast<GraphId>(rng.between(1, k + 1));
      symbols.push_back(NodeDesc{id});
      if (!bound[id]) {
        bound[id] = true;
        live.push_back(id);
      }
    } else if (roll < 9) {
      const GraphId from = live[rng.below(live.size())];
      const GraphId to = live[rng.below(live.size())];
      symbols.push_back(EdgeDesc{from, to});
    } else {
      const GraphId existing = live[rng.below(live.size())];
      const auto added = static_cast<GraphId>(rng.between(1, k + 1));
      symbols.push_back(AddId{existing, added});
      // Conservatively track bound-ness: `added` follows `existing`'s node.
      if (!bound[added]) {
        bound[added] = true;
        live.push_back(added);
      }
    }
  }
  return symbols;
}

TEST(CycleChecker, AgreesWithExplicitExpansionOnRandomDescriptors) {
  Xoshiro256 rng(2024);
  std::size_t rejected = 0, accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t k = 1 + rng.below(5);
    Descriptor d;
    d.k = k;
    d.symbols = random_descriptor(rng, k, 3 + rng.below(25));

    CycleChecker checker(k);
    bool checker_rejects = false;
    std::size_t prefix = 0;
    for (const Symbol& s : d.symbols) {
      ++prefix;
      if (checker.feed(s) == CycleChecker::Status::Reject) {
        checker_rejects = true;
        break;
      }
    }
    // Compare against explicit expansion of the *consumed prefix* (the
    // checker rejects at the first cycle-closing symbol).
    Descriptor consumed;
    consumed.k = k;
    consumed.symbols.assign(d.symbols.begin(),
                            d.symbols.begin() + prefix);
    const auto r = expand(consumed);
    ASSERT_TRUE(r.graph.has_value()) << r.error;
    EXPECT_EQ(checker_rejects, r.graph->graph.has_cycle())
        << "iteration " << iter << ": " << consumed.to_string();
    if (checker_rejects) {
      ++rejected;
    } else {
      ++accepted;
    }
  }
  // The generator must exercise both outcomes heavily.
  EXPECT_GT(rejected, 200u);
  EXPECT_GT(accepted, 200u);
}

TEST(CycleChecker, AcceptsEveryLemma32DescriptorOfADag) {
  Xoshiro256 rng(55);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 2 + rng.below(20);
    DiGraph g(n);
    // Forward-only edges at distance <= 3: a DAG with bandwidth <= 3.
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < std::min<std::uint32_t>(n, u + 4);
           ++v) {
        if (rng.chance(1, 2)) g.add_edge(u, v);
      }
    }
    const std::size_t k = std::max<std::size_t>(g.node_bandwidth(), 1);
    const Descriptor d = descriptor_for_graph(g, k);
    CycleChecker checker(k);
    for (const Symbol& s : d.symbols) {
      ASSERT_EQ(checker.feed(s), CycleChecker::Status::Ok)
          << checker.reject_reason();
    }
  }
}

}  // namespace
}  // namespace scv
