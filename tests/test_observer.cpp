// Tests for the witness observer (Theorem 4.1): non-interference, validity
// of the emitted constraint-graph descriptor (checked against the offline
// unbounded-state validator), bandwidth bounds (Section 4.4), the
// location-mirrored emission mode, and canonical state serialization.
#include <gtest/gtest.h>

#include "checker/sc_checker.hpp"
#include "descriptor/descriptor.hpp"
#include "graph/constraint_graph.hpp"
#include "observer/observer.hpp"
#include "protocol/directory.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "walker.hpp"

namespace scv {
namespace {

using testing::random_walk;

struct ObservedRun {
  Trace trace;
  std::vector<Symbol> symbols;
  ObserverStatus status = ObserverStatus::Ok;
  std::size_t peak_live = 0;
  std::size_t bandwidth = 0;
  std::string error;
};

/// Replays a random walk through an observer, collecting all symbols.
ObservedRun observe_walk(const Protocol& proto, std::size_t steps,
                         std::uint64_t seed, ObserverConfig cfg = {}) {
  const auto walk = random_walk(proto, steps, seed);
  ObservedRun run;
  run.trace = walk.trace;
  Observer obs(proto, cfg);
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  for (const Transition& t : walk.transitions) {
    proto.apply(state, t);
    run.status = obs.step(t, state, run.symbols);
    if (run.status != ObserverStatus::Ok) {
      run.error = obs.error();
      break;
    }
  }
  run.peak_live = obs.peak_live_nodes();
  run.bandwidth = obs.bandwidth();
  return run;
}

/// Expands observer output and validates it as a constraint graph of the
/// trace (offline reference validator).
void expect_valid_constraint_graph(const ObservedRun& run,
                                   bool expect_acyclic) {
  Descriptor d;
  d.k = kMaxBandwidth;
  d.symbols = run.symbols;
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  ASSERT_EQ(r.graph->graph.node_count(), run.trace.size());
  ConstraintGraph g(run.trace);
  for (std::uint32_t u = 0; u < r.graph->graph.node_count(); ++u) {
    ASSERT_TRUE(r.graph->node_labels[u].has_value());
    EXPECT_EQ(*r.graph->node_labels[u], run.trace[u])
        << "observer relabeled operation " << u;
    for (std::uint32_t v : r.graph->graph.successors(u)) {
      g.add_edge(u, v, r.graph->annotation(u, v));
    }
  }
  EXPECT_EQ(g.validate(), std::nullopt);
  if (expect_acyclic) {
    EXPECT_TRUE(g.acyclic());
  }
}

TEST(Observer, SerialMemoryRunsYieldValidAcyclicGraphs) {
  SerialMemory proto(2, 2, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = observe_walk(proto, 200, seed);
    ASSERT_EQ(run.status, ObserverStatus::Ok) << run.error;
    expect_valid_constraint_graph(run, true);
  }
}

TEST(Observer, MsiRunsYieldValidAcyclicGraphs) {
  MsiBus proto(2, 2, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = observe_walk(proto, 300, seed);
    ASSERT_EQ(run.status, ObserverStatus::Ok) << run.error;
    expect_valid_constraint_graph(run, true);
  }
}

TEST(Observer, DirectoryRunsYieldValidAcyclicGraphs) {
  DirectoryProtocol proto(2, 2, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = observe_walk(proto, 300, seed);
    ASSERT_EQ(run.status, ObserverStatus::Ok) << run.error;
    expect_valid_constraint_graph(run, true);
  }
}

TEST(Observer, NonInterferenceTraceEquality) {
  // The labeled node descriptors of the observer's output are exactly the
  // protocol trace, in order — property (i) of Definition 3.1, by
  // construction.
  MsiBus proto(2, 1, 2);
  const auto run = observe_walk(proto, 300, 42);
  ASSERT_EQ(run.status, ObserverStatus::Ok);
  Trace emitted;
  for (const Symbol& s : run.symbols) {
    if (const auto* nd = std::get_if<NodeDesc>(&s)) {
      ASSERT_TRUE(nd->label.has_value());
      emitted.push_back(*nd->label);
    }
  }
  EXPECT_EQ(emitted, run.trace);
}

TEST(Observer, PeakLiveNodesBoundedByPaperAccounting) {
  // Section 4.4: bandwidth is bounded by a function of L, p, b — never by
  // the run length.  Run long walks and compare against L + pb + p + 2b.
  struct Case {
    const Protocol& proto;
    std::size_t steps;
  };
  SerialMemory sm(2, 2, 2);
  MsiBus msi(2, 2, 2);
  DirectoryProtocol dir(2, 2, 2);
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&sm, &msi, &dir}) {
    std::size_t peak = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto run = observe_walk(*proto, 600, seed);
      ASSERT_EQ(run.status, ObserverStatus::Ok)
          << proto->name() << ": " << run.error;
      peak = std::max(peak, run.peak_live);
    }
    const auto& pr = proto->params();
    EXPECT_LE(peak,
              pr.locations + pr.procs * pr.blocks + pr.procs + 2 * pr.blocks)
        << proto->name();
  }
}

TEST(Observer, LazyCachingRunsAreAcceptedByChecker) {
  LazyCaching proto(2, 2, 2, 1, 2);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = observe_walk(proto, 300, seed);
    ASSERT_EQ(run.status, ObserverStatus::Ok) << run.error;
    // The checker's k must match the stream's bandwidth: the observer's
    // null-ID releases land on its own k+1, and any other unbound add-ID
    // source is rejected as dangling.
    ScChecker chk(ScCheckerConfig{run.bandwidth, 2, 2, 2});
    for (const Symbol& s : run.symbols) {
      ASSERT_EQ(chk.feed(s), ScChecker::Status::Ok)
          << chk.reject_reason() << " seed " << seed;
    }
  }
}

TEST(Observer, MirroredModeEmitsSameGraphAsCompact) {
  MsiBus proto(2, 1, 2);
  const auto walk = random_walk(proto, 250, 7);
  ObserverConfig compact;
  ObserverConfig mirrored;
  mirrored.location_mirrored = true;
  mirrored.pool_size = 24;
  Observer obs_c(proto, compact);
  Observer obs_m(proto, mirrored);
  std::vector<Symbol> sym_c, sym_m;
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  for (const Transition& t : walk.transitions) {
    proto.apply(state, t);
    ASSERT_EQ(obs_c.step(t, state, sym_c), ObserverStatus::Ok)
        << obs_c.error();
    ASSERT_EQ(obs_m.step(t, state, sym_m), ObserverStatus::Ok)
        << obs_m.error();
  }
  // The mirrored stream is longer (add-ID traffic) but must denote the
  // same labeled graph.
  EXPECT_GT(sym_m.size(), sym_c.size());
  Descriptor dc{kMaxBandwidth, sym_c}, dm{kMaxBandwidth, sym_m};
  const auto rc = expand(dc);
  const auto rm = expand(dm);
  ASSERT_TRUE(rc.graph.has_value()) << rc.error;
  ASSERT_TRUE(rm.graph.has_value()) << rm.error;
  EXPECT_TRUE(rc.graph->graph.same_edges(rm.graph->graph));
  for (std::uint32_t u = 0; u < rc.graph->graph.node_count(); ++u) {
    EXPECT_EQ(rc.graph->node_labels[u], rm.graph->node_labels[u]);
    for (std::uint32_t v : rc.graph->graph.successors(u)) {
      EXPECT_EQ(rc.graph->annotation(u, v), rm.graph->annotation(u, v));
    }
  }
}

TEST(Observer, MirroredModeAcceptedByChecker) {
  MsiBus proto(2, 1, 2);
  const auto walk = random_walk(proto, 250, 11);
  ObserverConfig mirrored;
  mirrored.location_mirrored = true;
  mirrored.pool_size = 24;
  Observer obs(proto, mirrored);
  ScChecker chk(ScCheckerConfig{obs.bandwidth(), 2, 1, 2});
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Symbol> symbols;
  for (const Transition& t : walk.transitions) {
    proto.apply(state, t);
    symbols.clear();
    ASSERT_EQ(obs.step(t, state, symbols), ObserverStatus::Ok)
        << obs.error();
    for (const Symbol& s : symbols) {
      ASSERT_EQ(chk.feed(s), ScChecker::Status::Ok) << chk.reject_reason();
    }
  }
}

TEST(Observer, TinyPoolReportsBandwidthExceeded) {
  MsiBus proto(2, 2, 2);
  ObserverConfig cfg;
  cfg.pool_size = 3;  // far below the protocol's needs
  bool exceeded = false;
  for (std::uint64_t seed = 1; seed <= 5 && !exceeded; ++seed) {
    const auto run = observe_walk(proto, 300, seed, cfg);
    exceeded = run.status == ObserverStatus::BandwidthExceeded;
  }
  EXPECT_TRUE(exceeded);
}

TEST(Observer, CanonicalSerializationErasesHistoryNaming) {
  // Two different interleavings reaching the same logical configuration
  // must serialize identically.  Protocol: serial memory, 2 procs; the
  // configuration "P1 stored 1 to B1, then P2 stored 1 to B1" vs the
  // reverse reach different logical states (different tails), so instead
  // drive two runs that demonstrably converge: store/load symmetric noise
  // followed by a common quiescing suffix is protocol-specific; here we
  // simply check that repeating the same run twice serializes equally and
  // that serialization is insensitive to pool naming after churn.
  SerialMemory proto(2, 1, 2);
  const auto drive = [&](std::uint64_t seed, std::size_t steps) {
    Observer obs(proto, {});
    std::vector<std::uint8_t> state(proto.state_size());
    proto.initial_state(state);
    const auto walk = random_walk(proto, steps, seed);
    std::vector<Symbol> symbols;
    for (const Transition& t : walk.transitions) {
      proto.apply(state, t);
      (void)obs.step(t, state, symbols);
    }
    return obs;
  };
  // Same seed, same length: identical states.
  {
    const Observer a = drive(3, 50);
    const Observer b = drive(3, 50);
    ByteWriter wa, wb;
    a.serialize(wa);
    b.serialize(wb);
    EXPECT_EQ(wa.data(), wb.data());
  }
  // Different histories, same logical tail: drive different-length walks,
  // then append the same canonicalizing suffix (every proc stores 1 then
  // loads) and compare.
  {
    Observer a = drive(4, 51);
    Observer b = drive(5, 52);
    std::vector<std::uint8_t> sa(proto.state_size());
    std::vector<std::uint8_t> sb(proto.state_size());
    // Reconstruct the protocol states by replaying (random_walk is
    // deterministic per seed).
    proto.initial_state(sa);
    for (const Transition& t : random_walk(proto, 51, 4).transitions) {
      proto.apply(sa, t);
    }
    proto.initial_state(sb);
    for (const Transition& t : random_walk(proto, 52, 5).transitions) {
      proto.apply(sb, t);
    }
    std::vector<Symbol> sink;
    for (std::size_t p = 0; p < 2; ++p) {
      Transition st;
      st.action = store_action(static_cast<ProcId>(p), 0, 1);
      st.loc = 0;
      proto.apply(sa, st);
      proto.apply(sb, st);
      ASSERT_EQ(a.step(st, sa, sink), ObserverStatus::Ok);
      ASSERT_EQ(b.step(st, sb, sink), ObserverStatus::Ok);
      Transition ld;
      ld.action = load_action(static_cast<ProcId>(p), 0, 1);
      ld.loc = 0;
      proto.apply(sa, ld);
      proto.apply(sb, ld);
      ASSERT_EQ(a.step(ld, sa, sink), ObserverStatus::Ok);
      ASSERT_EQ(b.step(ld, sb, sink), ObserverStatus::Ok);
    }
    ByteWriter wa, wb;
    a.serialize(wa);
    b.serialize(wb);
    EXPECT_EQ(wa.data(), wb.data())
        << "canonical serialization must collapse isomorphic states";
  }
}

TEST(Observer, DefaultPoolSizeWithinCheckerLimits) {
  SerialMemory small(1, 1, 1);
  MsiBus big(4, 4, 2);
  EXPECT_GE(Observer::default_pool_size(small), 4u);
  EXPECT_LE(Observer::default_pool_size(big), kMaxBandwidth - 1);
  Observer obs(big);
  EXPECT_LE(obs.bandwidth(), kMaxBandwidth);
}

// ------------------------------------------------ raw snapshot / restore
//
// The model checker's compact frontier serializes observers with
// snapshot() and rebuilds them with restore(); unlike the canonical
// serialization, the pair must be bit-faithful (pool IDs, handle naming,
// free mask and all).

TEST(Observer, SnapshotRestoreRoundtrip) {
  MsiBus proto(2, 2, 1);
  const auto walk = random_walk(proto, 120, 42);
  Observer obs(proto, {});
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Symbol> out;
  std::size_t step = 0;
  for (const Transition& t : walk.transitions) {
    proto.apply(state, t);
    out.clear();
    ASSERT_EQ(obs.step(t, state, out), ObserverStatus::Ok) << obs.error();
    ByteWriter snap;
    obs.snapshot(snap);
    Observer copy(proto, {});
    ByteReader r(snap.data());
    copy.restore(r);
    ASSERT_TRUE(r.done()) << "step " << step;
    // Bit-faithful: identical raw re-snapshot and identical canonical
    // serialization.
    ByteWriter resnap;
    copy.snapshot(resnap);
    ASSERT_EQ(resnap.data(), snap.data()) << "step " << step;
    ByteWriter ca, cb;
    obs.serialize(ca);
    copy.serialize(cb);
    ASSERT_EQ(cb.data(), ca.data()) << "step " << step;
    ++step;
  }
}

TEST(Observer, RestoredObserverContinuesIdentically) {
  LazyCaching proto(2, 1, 1, 1, 2);
  const auto walk = random_walk(proto, 160, 7);
  Observer obs(proto, {});
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Symbol> sym_a, sym_b;
  const std::size_t half = walk.transitions.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    proto.apply(state, walk.transitions[i]);
    ASSERT_EQ(obs.step(walk.transitions[i], state, sym_a),
              ObserverStatus::Ok);
  }
  ByteWriter snap;
  obs.snapshot(snap);
  Observer copy(proto, {});
  ByteReader r(snap.data());
  copy.restore(r);
  for (std::size_t i = half; i < walk.transitions.size(); ++i) {
    proto.apply(state, walk.transitions[i]);
    sym_a.clear();
    sym_b.clear();
    ASSERT_EQ(obs.step(walk.transitions[i], state, sym_a),
              ObserverStatus::Ok);
    ASSERT_EQ(copy.step(walk.transitions[i], state, sym_b),
              ObserverStatus::Ok);
    ASSERT_EQ(sym_a, sym_b) << "step " << i;
  }
  EXPECT_EQ(copy.peak_live_nodes(), obs.peak_live_nodes());
  EXPECT_EQ(copy.live_nodes(), obs.live_nodes());
}

}  // namespace
}  // namespace scv
