// Tests for the runtime-testing mode (Section 5's Gibbons–Korach testing
// scenario): the observer + checker monitoring long random runs, at
// parameters far beyond what the model checker explores.
#include <gtest/gtest.h>

#include "core/trace_tester.hpp"
#include "protocol/directory.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"

namespace scv {
namespace {

TEST(TraceTester, ScProtocolsPassLongRuns) {
  SerialMemory sm(3, 3, 3);
  MsiBus msi(3, 2, 2);
  DirectoryProtocol dir(3, 2, 2);
  LazyCaching lazy(3, 2, 2, 2, 3);
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&sm, &msi, &dir, &lazy}) {
    TraceTestOptions opt;
    opt.max_steps = 20000;
    opt.seed = 7;
    const TraceTestResult r = trace_test(*proto, opt);
    EXPECT_EQ(r.verdict, TraceVerdict::Passed)
        << proto->name() << ": " << r.summary();
    EXPECT_EQ(r.steps, 20000u);
    EXPECT_GT(r.memory_ops, 0u);
    EXPECT_GT(r.symbols, r.memory_ops);  // edges come with the ops
  }
}

TEST(TraceTester, FindsWriteBufferViolationQuickly) {
  WriteBuffer proto(2, 2, 1, 1, false);
  TraceTestOptions opt;
  opt.max_steps = 50000;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 5 && !found; ++seed) {
    opt.seed = seed;
    const TraceTestResult r = trace_test(proto, opt);
    if (r.verdict == TraceVerdict::Violation) {
      found = true;
      EXPECT_NE(r.reason.find("cycle"), std::string::npos);
      EXPECT_FALSE(r.tail.empty());
    }
  }
  EXPECT_TRUE(found) << "random testing should stumble on the stale read";
}

TEST(TraceTester, FindsForwardingViolationToo) {
  // The forwarding buffer needs the genuine 4-op interleaving; random
  // walks still find it within a modest budget.
  WriteBuffer proto(2, 2, 1, 1, true);
  TraceTestOptions opt;
  opt.max_steps = 200000;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 8 && !found; ++seed) {
    opt.seed = seed;
    found = trace_test(proto, opt).verdict == TraceVerdict::Violation;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTester, ScalesToParametersBeyondTheModelChecker) {
  // p=4, b=3, v=3 MSI: the product state space is astronomically large,
  // but runtime monitoring strolls through half a million steps.
  MsiBus proto(4, 3, 3);
  TraceTestOptions opt;
  opt.max_steps = 100000;
  const TraceTestResult r = trace_test(proto, opt);
  EXPECT_EQ(r.verdict, TraceVerdict::Passed) << r.summary();
}

TEST(TraceTester, DeterministicGivenSeed) {
  MsiBus proto(2, 2, 2);
  TraceTestOptions opt;
  opt.max_steps = 5000;
  opt.seed = 99;
  const TraceTestResult a = trace_test(proto, opt);
  const TraceTestResult b = trace_test(proto, opt);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.memory_ops, b.memory_ops);
  EXPECT_EQ(a.symbols, b.symbols);
}

TEST(TraceTester, TinyPoolReportsBandwidthExceeded) {
  MsiBus proto(3, 3, 2);
  TraceTestOptions opt;
  opt.max_steps = 50000;
  opt.observer.pool_size = 3;
  const TraceTestResult r = trace_test(proto, opt);
  EXPECT_EQ(r.verdict, TraceVerdict::BandwidthExceeded) << r.summary();
}

TEST(TraceTester, TailIsBounded) {
  WriteBuffer proto(2, 2, 1, 1, false);
  TraceTestOptions opt;
  opt.max_steps = 50000;
  opt.tail_length = 8;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    opt.seed = seed;
    const TraceTestResult r = trace_test(proto, opt);
    EXPECT_LE(r.tail.size(), 8u);
  }
}

TEST(TraceTester, SummaryIsHumanReadable) {
  SerialMemory proto(2, 1, 1);
  TraceTestOptions opt;
  opt.max_steps = 100;
  const TraceTestResult r = trace_test(proto, opt);
  EXPECT_NE(r.summary().find("Passed"), std::string::npos);
  EXPECT_NE(r.summary().find("steps"), std::string::npos);
}

}  // namespace
}  // namespace scv
