// Cross-module property tests tying the whole pipeline together — the
// invariants listed in DESIGN.md §5:
//
//   * Lemma 3.1 loop: SC trace -> constraint graph -> descriptor ->
//     finite-state checker accepts; and checker-accept -> expanded graph is
//     valid + acyclic -> extracted reordering is serial.
//   * Observer + ScChecker agree with the offline validator and the
//     brute-force oracle on random protocol runs.
//   * Non-SC traces are rejected along every route.
#include <gtest/gtest.h>

#include "checker/cycle_checker.hpp"
#include "checker/sc_checker.hpp"
#include "descriptor/descriptor.hpp"
#include "graph/constraint_graph.hpp"
#include "observer/observer.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/write_buffer.hpp"
#include "trace/generators.hpp"
#include "trace/sc_oracle.hpp"
#include "walker.hpp"

namespace scv {
namespace {

using testing::random_walk;

TEST(Pipeline, ScTraceToDescriptorToCycleCheckerLoop) {
  Xoshiro256 rng(1001);
  TraceGenParams params;
  params.processors = 3;
  params.blocks = 2;
  params.values = 2;
  params.length = 18;
  for (int iter = 0; iter < 40; ++iter) {
    // 1. SC trace with witness.
    const auto sc = random_sc_trace(params, rng);
    // 2. Lemma 3.1: acyclic valid constraint graph.
    const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
    ASSERT_EQ(g.validate(), std::nullopt);
    ASSERT_TRUE(g.acyclic());
    // 3. Lemma 3.2: bandwidth-bounded descriptor.
    const std::size_t k = std::max<std::size_t>(g.node_bandwidth(), 1);
    std::vector<std::optional<Operation>> labels;
    for (const Operation& op : sc.trace) labels.emplace_back(op);
    const Descriptor d = descriptor_for_graph(g.digraph(), k, &labels);
    // 4. Lemma 3.3: the finite-state cycle checker accepts.
    CycleChecker checker(k);
    for (const Symbol& s : d.symbols) {
      ASSERT_EQ(checker.feed(s), CycleChecker::Status::Ok)
          << checker.reject_reason();
    }
    // 5. Converse: expansion -> topological order -> serial reordering.
    const auto r = expand(d);
    ASSERT_TRUE(r.graph.has_value());
    ASSERT_FALSE(r.graph->graph.has_cycle());
  }
}

TEST(Pipeline, NonScTraceGraphsAreRejectedByCycleChecker) {
  // Build the (unique up to STo choice) constraint graph of the SB litmus
  // and check the finite-state checker rejects its descriptor.
  const Trace t{make_store(0, 0, 1), make_load(0, 1, kBottom),
                make_store(1, 1, 1), make_load(1, 0, kBottom)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo);
  g.add_edge(2, 3, kAnnoPo);
  g.add_edge(1, 2, kAnnoForced);
  g.add_edge(3, 0, kAnnoForced);
  ASSERT_EQ(g.validate(), std::nullopt);
  ASSERT_FALSE(g.acyclic());
  const Descriptor d = naive_descriptor(g.digraph());
  CycleChecker checker(d.k);
  bool rejected = false;
  for (const Symbol& s : d.symbols) {
    if (checker.feed(s) == CycleChecker::Status::Reject) {
      rejected = true;
      break;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(Pipeline, ObserverCheckerAgreesWithOracleOnScProtocols) {
  // For SC protocols, every prefix trace has a serial reordering and the
  // observer–checker pair accepts the whole run.
  MsiBus msi(2, 2, 2);
  LazyCaching lazy(2, 2, 2, 1, 2);
  ScOracle oracle;
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&msi, &lazy}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto walk = random_walk(*proto, 120, seed);
      Observer obs(*proto, {});
      ScChecker chk(ScCheckerConfig{obs.bandwidth(), proto->params().procs,
                                    proto->params().blocks,
                                    proto->params().values});
      std::vector<std::uint8_t> state(proto->state_size());
      proto->initial_state(state);
      std::vector<Symbol> symbols;
      for (const Transition& t : walk.transitions) {
        proto->apply(state, t);
        symbols.clear();
        ASSERT_EQ(obs.step(t, state, symbols), ObserverStatus::Ok)
            << proto->name() << ": " << obs.error();
        for (const Symbol& s : symbols) {
          ASSERT_EQ(chk.feed(s), ScChecker::Status::Ok)
              << proto->name() << " seed " << seed << ": "
              << chk.reject_reason();
        }
      }
      Trace prefix = walk.trace;
      prefix.resize(std::min<std::size_t>(prefix.size(), 12));
      EXPECT_TRUE(oracle.has_serial_reordering(prefix));
    }
  }
}

TEST(Pipeline, CheckerRejectsNoLaterThanTheOracleOnWriteBuffer) {
  // Drive the write buffer randomly.  The guaranteed per-run direction is:
  // once the accumulated *trace* has no serial reordering, the checker has
  // already rejected (the run's witness graph W(R) is fully emitted under
  // real-time ST ordering, and Lemma 3.1 makes some cycle inevitable).
  //
  // The converse is deliberately NOT asserted: the checker may reject
  // *earlier*, on a run whose trace is still SC thanks to value
  // collisions, because the observer is pinned to the physical data flow
  // — the run's W(R) is cyclic even though some other constraint graph
  // for the same trace is acyclic.  That is Definition 4.1 speaking: the
  // write buffer is outside the class Γ, and the method reports protocols
  // outside Γ ∪ SC as violations.  (Oracle calls are exponential: keep
  // traces short.)
  WriteBuffer proto(2, 2, 1, 1, false);
  ScOracle oracle;
  std::size_t rejections = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed);
    Observer obs(proto, {});
    ScChecker chk(ScCheckerConfig{obs.bandwidth(), 2, 2, 1});
    std::vector<std::uint8_t> state(proto.state_size());
    proto.initial_state(state);
    Trace trace;
    std::vector<Transition> enabled;
    std::vector<Symbol> symbols;
    bool rejected = false;
    for (int step = 0; step < 16 && !rejected; ++step) {
      enabled.clear();
      proto.enumerate(state, enabled);
      const Transition t = enabled[rng.below(enabled.size())];
      proto.apply(state, t);
      if (t.action.is_memory_op()) trace.push_back(t.action.op);
      symbols.clear();
      ASSERT_EQ(obs.step(t, state, symbols), ObserverStatus::Ok)
          << obs.error();
      for (const Symbol& s : symbols) {
        if (chk.feed(s) == ScChecker::Status::Reject) {
          rejected = true;
          break;
        }
      }
      if (!rejected) {
        EXPECT_TRUE(oracle.has_serial_reordering(trace))
            << "checker missed a violation:\n"
            << to_string(trace);
      } else {
        ++rejections;
      }
    }
  }
  EXPECT_GT(rejections, 0u) << "random runs never hit the violation";
}

TEST(Pipeline, ExtractedWitnessesRoundTripThroughEveryRepresentation) {
  // trace -> graph -> descriptor -> expansion -> graph' -> reordering ->
  // apply -> serial trace, for a pile of random SC traces.
  Xoshiro256 rng(4242);
  TraceGenParams params;
  params.processors = 2;
  params.blocks = 3;
  params.values = 3;
  params.length = 24;
  for (int iter = 0; iter < 25; ++iter) {
    const auto sc = random_sc_trace(params, rng);
    const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
    std::vector<std::optional<Operation>> labels;
    for (const Operation& op : sc.trace) labels.emplace_back(op);
    std::vector<std::vector<std::uint8_t>> annos(g.node_count());
    for (std::uint32_t u = 0; u < g.node_count(); ++u) {
      for (std::uint32_t v : g.digraph().successors(u)) {
        annos[u].push_back(g.annotation(u, v));
      }
    }
    const Descriptor d = descriptor_for_graph(
        g.digraph(), std::max<std::size_t>(g.node_bandwidth(), 1), &labels,
        &annos);
    const auto r = expand(d);
    ASSERT_TRUE(r.graph.has_value());
    // Rebuild a ConstraintGraph from the expansion and extract a witness.
    ConstraintGraph g2(sc.trace);
    for (std::uint32_t u = 0; u < r.graph->graph.node_count(); ++u) {
      for (std::uint32_t v : r.graph->graph.successors(u)) {
        g2.add_edge(u, v, r.graph->annotation(u, v));
      }
    }
    ASSERT_EQ(g2.validate(), std::nullopt);
    const Reordering witness = g2.extract_serial_reordering();
    EXPECT_TRUE(is_serial_trace(apply_reordering(sc.trace, witness)));
  }
}

}  // namespace
}  // namespace scv
