// Deep edge-case coverage for the finite-state checkers: alias (add-ID)
// interactions, retirement-order corner cases, the kGone successor
// sentinel, mirrored-style streams, and the ST-order generator helper
// classes of Section 4.2.
#include <gtest/gtest.h>

#include "checker/cycle_checker.hpp"
#include "checker/sc_checker.hpp"
#include "observer/st_order.hpp"
#include "protocol/serial_memory.hpp"

namespace scv {
namespace {

using Status = ScChecker::Status;

ScChecker checker(std::size_t k = 12, std::size_t procs = 2,
                  std::size_t blocks = 2, std::size_t values = 2) {
  return ScChecker(ScCheckerConfig{k, procs, blocks, values});
}

// ----------------------------------------------------- add-ID aliasing

TEST(Alias, MirroredStyleStoreWithLocationAliases) {
  // A store gets a pool ID plus two location aliases; edges through any
  // alias bind to the same node, so a load inheriting via an alias works.
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{5, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(AddId{5, 1}), Status::Ok);  // location 0 alias
  ASSERT_EQ(c.feed(AddId{5, 2}), Status::Ok);  // copied to location 1
  ASSERT_EQ(c.feed(NodeDesc{6, make_load(1, 0, 1)}), Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{2, 6, kAnnoInh}), Status::Ok)
      << c.reject_reason();
  // A second inheritance via the other alias is still a duplicate.
  EXPECT_EQ(c.feed(EdgeDesc{1, 6, kAnnoInh}), Status::Reject);
}

TEST(Alias, StrippingAliasKeepsObligations) {
  // Rebinding one alias elsewhere must not retire the node or lose its
  // obligations.
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{5, make_load(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(AddId{5, 6}), Status::Ok);
  // Alias 6 is recycled by a new node; the load survives with ID 5 and
  // still owes its inheritance edge, so retiring 5 rejects.
  ASSERT_EQ(c.feed(NodeDesc{6, make_store(1, 0, 1)}), Status::Ok);
  EXPECT_EQ(c.feed(AddId{13, 5}), Status::Reject);  // null-ID retirement
  EXPECT_NE(c.reject_reason().find("inheritance"), std::string::npos);
}

TEST(Alias, AddIdFromNullIdActsAsRelease) {
  auto c = checker();  // k = 12, reserved null ID = 13
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  // add-ID(null, 1) unbinds 1 and retires the store — legal (sole store
  // of its block, no obligations).
  EXPECT_EQ(c.feed(AddId{13, 1}), Status::Ok) << c.reject_reason();
  EXPECT_EQ(c.active_nodes(), 0u);
}

TEST(Alias, AddIdFromDanglingIdRejected) {
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  // ID 9 is bound to nothing and is not the reserved null ID: the alias
  // source is dangling, so the descriptor is malformed.
  EXPECT_EQ(c.feed(AddId{9, 1}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("not bound"), std::string::npos);
}

// ----------------------------------------------- retirement corner cases

TEST(Retirement, StoreRetiringWithLivePendingLoadReleasesIt) {
  // A store with no STo successor retires; its pending load is released
  // (the forced-edge triple can never form) and may retire afterwards.
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2, make_load(1, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  // Retire the store via the null-ID idiom (it is the last store: legal).
  ASSERT_EQ(c.feed(AddId{13, 1}), Status::Ok) << c.reject_reason();
  // Now the load can retire too.
  EXPECT_EQ(c.feed(AddId{13, 2}), Status::Ok) << c.reject_reason();
}

TEST(Retirement, ForcedTargetRetiringBeforeEdgeRejects) {
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2, make_load(1, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{3, make_store(0, 0, 2)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoSto}), Status::Ok);
  // Node 3 is now the forced-edge target owed by load 2; retiring it
  // before the edge arrives is irrecoverable.
  EXPECT_EQ(c.feed(AddId{13, 3}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("target retired"), std::string::npos);
}

TEST(Retirement, NewOpAfterPoTailRetiredRejects) {
  // Retiring a processor's program-order tail is legal (it may be the last
  // op), but a further op of that processor can then never receive its po
  // edge.
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(1, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(AddId{13, 1}), Status::Ok) << c.reject_reason();
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(1, 0, 2)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("predecessor retired"),
            std::string::npos);
}

TEST(Retirement, InheritingFromStoreWithRetiredSuccessorRejects) {
  auto c = checker();
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2, make_store(1, 0, 2)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), Status::Ok);
  // Successor (node 2, P2's tail) retires — fine, no pending obligations.
  ASSERT_EQ(c.feed(AddId{13, 2}), Status::Ok) << c.reject_reason();
  // But a *new* load inheriting from node 1 now needs a forced edge to the
  // retired successor: impossible (kGone sentinel).  Use P1, whose
  // program-order tail (node 1) is still live.
  ASSERT_EQ(c.feed(NodeDesc{3, make_load(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{1, 3, kAnnoInh}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("successor"), std::string::npos);
}

TEST(Retirement, SecondStoreChainStartRejectsAcrossRetirements) {
  // STo chain S1 -> S2 exists.  Two *later* stores each retire without an
  // incoming STo edge: at most one store per block may end chain-less
  // (constraint 3), so the second such retirement rejects.
  auto c = checker(12, 2, 1, 2);
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2, make_store(1, 0, 2)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{3, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(AddId{13, 3}), Status::Ok) << c.reject_reason();
  ASSERT_EQ(c.feed(NodeDesc{4, make_store(1, 0, 2)}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{2, 4, kAnnoPo}), Status::Ok);
  EXPECT_EQ(c.feed(AddId{13, 4}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("constraint 3"), std::string::npos);
}

TEST(Retirement, BottomLoadAfterRootRetiredRejects) {
  auto c = checker(12, 2, 1, 1);
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  ASSERT_EQ(c.feed(AddId{13, 1}), Status::Ok);  // root retires
  EXPECT_EQ(c.feed(NodeDesc{2, make_load(1, 0, kBottom)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("5b"), std::string::npos);
}

// ------------------------------------------------ contraction fidelity

TEST(Contraction, LongChainSurvivesInteriorRetirements) {
  // Build 1 -> 2 -> 3 -> 4 as stores of one block (STo chain), retire the
  // two interior nodes, then check 4 -> 1 still closes the cycle.
  CycleChecker c(4);
  for (GraphId id = 1; id <= 4; ++id) {
    ASSERT_EQ(c.feed(NodeDesc{id}), CycleChecker::Status::Ok);
  }
  ASSERT_EQ(c.feed(EdgeDesc{1, 2}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{2, 3}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{3, 4}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2}), CycleChecker::Status::Ok);  // retire old 2
  ASSERT_EQ(c.feed(NodeDesc{3}), CycleChecker::Status::Ok);  // retire old 3
  EXPECT_EQ(c.feed(EdgeDesc{4, 1}), CycleChecker::Status::Reject);
}

TEST(Contraction, DiamondPreservedThroughRetirement) {
  // 1 -> {2,3} -> 4; retiring 2 and 3 must keep 1 -> 4 reachability.
  CycleChecker c(4);
  for (GraphId id = 1; id <= 4; ++id) {
    ASSERT_EQ(c.feed(NodeDesc{id}), CycleChecker::Status::Ok);
  }
  ASSERT_EQ(c.feed(EdgeDesc{1, 2}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{2, 4}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{3, 4}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2}), CycleChecker::Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{3}), CycleChecker::Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{4, 1}), CycleChecker::Status::Reject);
}

// --------------------------------------------- ST order generator units

TEST(StOrder, RealTimeSerializesAtIssue) {
  RealTimeStOrder gen;
  std::vector<NodeHandle> serialized;
  gen.on_store(7, 0, serialized);
  ASSERT_EQ(serialized.size(), 1u);
  EXPECT_EQ(serialized[0], 7u);
  // Internal actions never serialize anything under real-time order.
  StIndexTracker tracker(4);
  Transition t;
  t.serialize_loc = 2;
  gen.on_internal(t, tracker, serialized);
  EXPECT_EQ(serialized.size(), 1u);
}

TEST(StOrder, DeferredSerializesAtHintedLocation) {
  DeferredStOrder gen;
  std::vector<NodeHandle> serialized;
  gen.on_store(7, 0, serialized);
  EXPECT_TRUE(serialized.empty());  // issue does not serialize
  StIndexTracker tracker(4);
  tracker.on_store(2, 7);
  Transition t;
  t.serialize_loc = 2;
  gen.on_internal(t, tracker, serialized);
  ASSERT_EQ(serialized.size(), 1u);
  EXPECT_EQ(serialized[0], 7u);
  // Transitions without a hint serialize nothing.
  Transition none;
  gen.on_internal(none, tracker, serialized);
  EXPECT_EQ(serialized.size(), 1u);
}

// ------------------------------------------------ label range policing

TEST(Labels, CheckerEnforcesConfiguredParameterRanges) {
  auto c = checker(12, /*procs=*/2, /*blocks=*/2, /*values=*/2);
  EXPECT_EQ(c.feed(NodeDesc{1, make_load(2, 0, 1)}), Status::Reject);
  auto c2 = checker();
  EXPECT_EQ(c2.feed(NodeDesc{1, make_load(0, 2, 1)}), Status::Reject);
  auto c3 = checker();
  EXPECT_EQ(c3.feed(NodeDesc{1, make_load(0, 0, 3)}), Status::Reject);
}

TEST(Labels, BottomValuedStoreLabelRejected) {
  auto c = checker();
  Operation bad;
  bad.kind = OpKind::Store;
  bad.value = kBottom;
  EXPECT_EQ(c.feed(NodeDesc{1, bad}), Status::Reject);
}

// ------------------------------------------------ idempotent rejection

TEST(Rejection, FirstReasonIsSticky) {
  auto c = checker();
  (void)c.feed(NodeDesc{1, make_load(0, 0, 3)});
  const std::string reason = c.reject_reason();
  (void)c.feed(NodeDesc{2, make_store(0, 0, 1)});
  EXPECT_EQ(c.reject_reason(), reason);
  EXPECT_TRUE(c.rejected());
}

}  // namespace
}  // namespace scv
