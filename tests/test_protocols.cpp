// Tests for the concrete protocols: transition semantics, state invariants
// (via exhaustive protocol-only reachability), truthfulness of the tracking
// labels of Section 4.1, and the Figure 4 worked example.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "protocol/directory.hpp"
#include "protocol/get_shared_toy.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/st_index.hpp"
#include "protocol/write_buffer.hpp"
#include "trace/sc_oracle.hpp"
#include "walker.hpp"

namespace scv {
namespace {

using testing::find_transition;
using testing::random_walk;

/// Exhaustive reachability over the bare protocol, calling `check` on every
/// reachable state.  Returns the number of states.
std::size_t for_each_reachable(
    const Protocol& proto,
    const std::function<void(std::span<const std::uint8_t>)>& check,
    std::size_t limit = 500000) {
  std::set<std::vector<std::uint8_t>> visited;
  std::vector<std::vector<std::uint8_t>> frontier;
  std::vector<std::uint8_t> init(proto.state_size());
  proto.initial_state(init);
  visited.insert(init);
  frontier.push_back(init);
  check(init);
  std::vector<Transition> transitions;
  while (!frontier.empty() && visited.size() < limit) {
    std::vector<std::vector<std::uint8_t>> next;
    for (const auto& s : frontier) {
      transitions.clear();
      proto.enumerate(s, transitions);
      for (const Transition& t : transitions) {
        auto succ = s;
        proto.apply(succ, t);
        if (visited.insert(succ).second) {
          check(succ);
          next.push_back(std::move(succ));
        }
      }
    }
    frontier = std::move(next);
  }
  return visited.size();
}

// ------------------------------------------------------------ tracking

TEST(Tracking, SerialMemoryLabelsAreTruthful) {
  SerialMemory proto(2, 2, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto walk = random_walk(proto, 400, seed);
    EXPECT_FALSE(walk.tracking_violation.has_value()) << "seed " << seed;
  }
}

TEST(Tracking, WriteBufferLabelsAreTruthful) {
  for (const bool fwd : {false, true}) {
    WriteBuffer proto(2, 2, 2, 2, fwd);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto walk = random_walk(proto, 400, seed);
      EXPECT_FALSE(walk.tracking_violation.has_value())
          << "fwd=" << fwd << " seed " << seed;
    }
  }
}

TEST(Tracking, MsiLabelsAreTruthful) {
  MsiBus proto(3, 2, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto walk = random_walk(proto, 500, seed);
    EXPECT_FALSE(walk.tracking_violation.has_value()) << "seed " << seed;
  }
}

TEST(Tracking, DirectoryLabelsAreTruthful) {
  DirectoryProtocol proto(3, 2, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto walk = random_walk(proto, 500, seed);
    EXPECT_FALSE(walk.tracking_violation.has_value()) << "seed " << seed;
  }
}

TEST(Tracking, LazyCachingLabelsAreTruthful) {
  LazyCaching proto(3, 2, 2, 2, 3);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto walk = random_walk(proto, 500, seed);
    EXPECT_FALSE(walk.tracking_violation.has_value()) << "seed " << seed;
  }
}

TEST(Tracking, GetSharedToyLabelsAreTruthful) {
  GetSharedToy proto(2, 3, 3, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto walk = random_walk(proto, 300, seed);
    EXPECT_FALSE(walk.tracking_violation.has_value()) << "seed " << seed;
  }
}

// ---------------------------------------------------------- SC by oracle

TEST(ScByOracle, ScProtocolsProduceScTraces) {
  // Random-walk traces of the SC protocols must all have serial
  // reorderings (the oracle is exponential, so keep traces short).
  ScOracle oracle;
  {
    MsiBus proto(2, 2, 2);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto walk = random_walk(proto, 60, seed);
      walk.trace.resize(std::min<std::size_t>(walk.trace.size(), 14));
      EXPECT_TRUE(oracle.has_serial_reordering(walk.trace))
          << "MSI seed " << seed << "\n"
          << to_string(walk.trace);
    }
  }
  {
    LazyCaching proto(2, 2, 2, 1, 2);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto walk = random_walk(proto, 80, seed);
      walk.trace.resize(std::min<std::size_t>(walk.trace.size(), 14));
      EXPECT_TRUE(oracle.has_serial_reordering(walk.trace))
          << "Lazy seed " << seed << "\n"
          << to_string(walk.trace);
    }
  }
  {
    DirectoryProtocol proto(2, 2, 2);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto walk = random_walk(proto, 80, seed);
      walk.trace.resize(std::min<std::size_t>(walk.trace.size(), 14));
      EXPECT_TRUE(oracle.has_serial_reordering(walk.trace))
          << "Dir seed " << seed << "\n"
          << to_string(walk.trace);
    }
  }
}

// ---------------------------------------------------------- SerialMemory

TEST(SerialMemory, EnumerationShape) {
  SerialMemory proto(2, 2, 3);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  std::vector<Transition> ts;
  proto.enumerate(s, ts);
  // Per (P,B): one load + v stores.
  EXPECT_EQ(ts.size(), 2 * 2 * (1 + 3));
}

TEST(SerialMemory, LoadsSeeLatestStore) {
  SerialMemory proto(1, 1, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  const auto st = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.value == 2;
  });
  proto.apply(s, st);
  const auto ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load;
  });
  EXPECT_EQ(ld.action.op.value, 2);
  EXPECT_FALSE(proto.could_load_bottom(s, 0));
}

TEST(SerialMemory, StateSpaceIsExactlyValuePower) {
  SerialMemory proto(2, 2, 2);
  // Memory words over {⊥,1,2}^2 are all reachable: 9 states.
  EXPECT_EQ(for_each_reachable(proto, [](auto) {}), 9u);
}

// ----------------------------------------------------------- WriteBuffer

TEST(WriteBuffer, DrainMovesHeadToMemory) {
  WriteBuffer proto(1, 2, 2, 2, false);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  const auto st1 = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.block == 0 &&
           t.action.op.value == 1;
  });
  proto.apply(s, st1);
  const auto st2 = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.block == 1 &&
           t.action.op.value == 2;
  });
  proto.apply(s, st2);
  // Memory still ⊥: loads return ⊥.
  auto ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.block == 0;
  });
  EXPECT_EQ(ld.action.op.value, kBottom);
  // Drain once: block 0 visible.
  const auto dr = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Internal;
  });
  proto.apply(s, dr);
  ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.block == 0;
  });
  EXPECT_EQ(ld.action.op.value, 1);
  ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.block == 1;
  });
  EXPECT_EQ(ld.action.op.value, kBottom);
}

TEST(WriteBuffer, ForwardingReadsNewestBufferedEntry) {
  WriteBuffer proto(1, 1, 2, 2, true);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  for (const Value v : {Value{1}, Value{2}}) {
    const auto st = find_transition(proto, s, [v](const Transition& t) {
      return t.action.kind == Action::Kind::Store && t.action.op.value == v;
    });
    proto.apply(s, st);
  }
  const auto ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load;
  });
  EXPECT_EQ(ld.action.op.value, 2);  // newest entry wins
}

TEST(WriteBuffer, FullBufferDisablesStores) {
  WriteBuffer proto(1, 1, 1, 1, false);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  const auto st = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store;
  });
  proto.apply(s, st);
  std::vector<Transition> ts;
  proto.enumerate(s, ts);
  for (const Transition& t : ts) {
    EXPECT_NE(t.action.kind, Action::Kind::Store);
  }
}

// ----------------------------------------------------------------- MSI

TEST(Msi, CoherenceInvariantsOnAllReachableStates) {
  MsiBus proto(2, 2, 2);
  const std::size_t states = for_each_reachable(
      proto, [&](std::span<const std::uint8_t> s) {
        for (std::size_t b = 0; b < 2; ++b) {
          int modified = 0;
          int shared = 0;
          for (std::size_t p = 0; p < 2; ++p) {
            const auto cs = proto.cache_state(s, p, b);
            modified += cs == MsiBus::kModified;
            shared += cs == MsiBus::kShared;
          }
          EXPECT_LE(modified, 1) << "two Modified owners";
          if (modified == 1) {
            EXPECT_EQ(shared, 0) << "Modified coexists with Shared";
          }
          // All Shared copies agree with memory.
          for (std::size_t p = 0; p < 2; ++p) {
            if (proto.cache_state(s, p, b) == MsiBus::kShared) {
              EXPECT_EQ(proto.cache_data(s, p, b), proto.memory(s, b));
            }
          }
        }
      });
  EXPECT_GT(states, 100u);
}

TEST(Msi, StoreRequiresModified) {
  MsiBus proto(2, 1, 1);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  std::vector<Transition> ts;
  proto.enumerate(s, ts);
  for (const Transition& t : ts) {
    EXPECT_NE(t.action.kind, Action::Kind::Store)
        << "store enabled from Invalid";
    EXPECT_NE(t.action.kind, Action::Kind::Load)
        << "load enabled from Invalid";
  }
}

TEST(Msi, GetXThenStoreThenRemoteLoadSeesValue) {
  MsiBus proto(2, 1, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Internal &&
                       t.action.internal_id == MsiBus::kBusGetX &&
                       t.action.arg0 == 0;
              }));
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Store &&
                       t.action.op.value == 2;
              }));
  // P2 fetches shared: must see 2 and downgrade P1.
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Internal &&
                       t.action.internal_id == MsiBus::kBusGetS &&
                       t.action.arg0 == 1;
              }));
  EXPECT_EQ(proto.cache_state(s, 0, 0), MsiBus::kShared);
  EXPECT_EQ(proto.cache_data(s, 1, 0), 2);
  EXPECT_EQ(proto.memory(s, 0), 2);  // writeback happened
}

// ------------------------------------------------------------- Directory

TEST(Directory, InvariantsOnAllReachableStates) {
  DirectoryProtocol proto(2, 1, 1);
  const std::size_t states = for_each_reachable(
      proto, [&](std::span<const std::uint8_t> s) {
        const std::uint8_t d = proto.dir(s, 0);
        int modified = 0;
        for (std::size_t p = 0; p < 2; ++p) {
          modified += proto.cstate(s, p, 0) == DirectoryProtocol::kModified;
        }
        EXPECT_LE(modified, 1);
        if (d & 0x80) {
          const std::size_t owner = d & 0x7f;
          // The registered owner is Modified unless its data is in flight.
          EXPECT_TRUE(proto.cstate(s, owner, 0) ==
                          DirectoryProtocol::kModified ||
                      proto.reply_full(s, owner, 0))
              << "directory names a non-owner";
        } else {
          EXPECT_EQ(modified, 0) << "Modified copy without directory owner";
          // Registered sharers are Shared (or awaiting their fill).
          for (std::size_t p = 0; p < 2; ++p) {
            if (d & (1u << p)) {
              EXPECT_TRUE(
                  proto.cstate(s, p, 0) == DirectoryProtocol::kShared ||
                  proto.reply_full(s, p, 0));
            }
          }
        }
      });
  EXPECT_GT(states, 50u);
}

TEST(Directory, ThreeHopTransferDeliversData) {
  DirectoryProtocol proto(2, 1, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  const auto drive = [&](std::uint8_t id, std::uint8_t p) {
    proto.apply(s, find_transition(proto, s, [&](const Transition& t) {
                  return t.action.kind == Action::Kind::Internal &&
                         t.action.internal_id == id && t.action.arg0 == p;
                }));
  };
  drive(DirectoryProtocol::kReqX, 0);
  drive(DirectoryProtocol::kHomeX, 0);
  drive(DirectoryProtocol::kRecv, 0);
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Store &&
                       t.action.op.value == 2;
              }));
  drive(DirectoryProtocol::kReqS, 1);
  drive(DirectoryProtocol::kHomeS, 1);
  EXPECT_TRUE(proto.reply_full(s, 1, 0));
  drive(DirectoryProtocol::kRecv, 1);
  EXPECT_EQ(proto.cstate(s, 1, 0), DirectoryProtocol::kShared);
  EXPECT_EQ(proto.cdata(s, 1, 0), 2);
  EXPECT_EQ(proto.cstate(s, 0, 0), DirectoryProtocol::kShared);
}

TEST(Directory, HomeBusyWhileReplyInFlight) {
  DirectoryProtocol proto(2, 1, 1);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  const auto drive = [&](std::uint8_t id, std::uint8_t p) {
    proto.apply(s, find_transition(proto, s, [&](const Transition& t) {
                  return t.action.kind == Action::Kind::Internal &&
                         t.action.internal_id == id && t.action.arg0 == p;
                }));
  };
  drive(DirectoryProtocol::kReqS, 0);
  drive(DirectoryProtocol::kReqS, 1);
  drive(DirectoryProtocol::kHomeS, 0);
  // P2's request must not be processed while P1's reply is in flight.
  std::vector<Transition> ts;
  proto.enumerate(s, ts);
  for (const Transition& t : ts) {
    if (t.action.kind == Action::Kind::Internal &&
        t.action.internal_id == DirectoryProtocol::kHomeS) {
      EXPECT_NE(t.action.arg0, 1);
    }
  }
}

// ----------------------------------------------------------- LazyCaching

TEST(LazyCaching, ReadsBlockedUntilOwnWritesApplied) {
  LazyCaching proto(2, 1, 1, 1, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Store &&
                       t.action.op.proc == 0;
              }));
  // P1 wrote: P1 reads disabled (out-queue nonempty); P2 reads still fine.
  std::vector<Transition> ts;
  proto.enumerate(s, ts);
  for (const Transition& t : ts) {
    if (t.action.kind == Action::Kind::Load) {
      EXPECT_EQ(t.action.op.proc, 1);
    }
  }
  // Serialize: the starred update sits in P1's in-queue; reads still
  // blocked until CacheUpdate applies it.
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Internal &&
                       t.action.internal_id == LazyCaching::kMemWrite;
              }));
  EXPECT_TRUE(proto.in_has_star(s, 0));
  ts.clear();
  proto.enumerate(s, ts);
  for (const Transition& t : ts) {
    if (t.action.kind == Action::Kind::Load) {
      EXPECT_EQ(t.action.op.proc, 1);
    }
  }
  // Apply the update: now P1 may read its own write.
  proto.apply(s, find_transition(proto, s, [](const Transition& t) {
                return t.action.kind == Action::Kind::Internal &&
                       t.action.internal_id == LazyCaching::kCacheUpdate &&
                       t.action.arg0 == 0;
              }));
  const auto ld = find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.proc == 0;
  });
  EXPECT_EQ(ld.action.op.value, 1);
}

TEST(LazyCaching, UpdatesApplyInMemoryOrderEverywhere) {
  // Two writers to the same block: after all queues drain, every cache
  // agrees with memory (the broadcast-in-memory-order property that makes
  // the memory-write ST order correct).
  LazyCaching proto(2, 1, 2, 1, 3);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed);
    std::vector<std::uint8_t> s(proto.state_size());
    proto.initial_state(s);
    std::vector<Transition> ts;
    for (int step = 0; step < 60; ++step) {
      ts.clear();
      proto.enumerate(s, ts);
      proto.apply(s, ts[rng.below(ts.size())]);
    }
    // Drain: prefer MW/CU until queues are empty.
    for (int step = 0; step < 100; ++step) {
      ts.clear();
      proto.enumerate(s, ts);
      const Transition* drain = nullptr;
      for (const Transition& t : ts) {
        if (t.action.kind == Action::Kind::Internal &&
            (t.action.internal_id == LazyCaching::kMemWrite ||
             t.action.internal_id == LazyCaching::kCacheUpdate)) {
          drain = &t;
          break;
        }
      }
      if (drain == nullptr) break;
      proto.apply(s, *drain);
    }
    for (std::size_t p = 0; p < 2; ++p) {
      EXPECT_EQ(proto.out_count(s, p), 0u);
      EXPECT_EQ(proto.in_count(s, p), 0u);
      EXPECT_EQ(proto.cache(s, p, 0), proto.memory(s, 0)) << "seed " << seed;
    }
  }
}

// -------------------------------------------------- GetSharedToy (Fig. 4)

TEST(Fig4, TrackingLabelsAndStIndexesMatchThePaper) {
  // Figure 4's run: ST(P1,B1,1) into location 1, ST(P2,B2,2) into location
  // 4, Get-Shared(P2,B1) copying location 1 -> 3, ST(P1,B3,3) into
  // location 1.  (Paper locations are 1-based; ours are 0-based.)
  GetSharedToy proto(2, 3, 3, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  StIndexTracker tracker(proto.params().locations);
  std::size_t trace_ops = 0;

  const auto step = [&](const Transition& t) {
    proto.apply(s, t);
    if (t.action.kind == Action::Kind::Store) {
      ++trace_ops;
      tracker.on_store(t.loc, static_cast<std::uint32_t>(trace_ops));
    }
    if (!t.copies.empty()) {
      tracker.on_copies({t.copies.begin(), t.copies.size()});
    }
  };

  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.proc == 0 &&
           t.action.op.block == 0 && t.action.op.value == 1 && t.loc == 0;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.proc == 1 &&
           t.action.op.block == 1 && t.action.op.value == 2 && t.loc == 3;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Internal && t.action.arg0 == 1 &&
           t.action.arg1 == 0 && t.copies.size() == 1 &&
           t.copies[0].src == 0 && t.copies[0].dst == 2;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.proc == 0 &&
           t.action.op.block == 2 && t.action.op.value == 3 && t.loc == 0;
  }));

  // Figure 4(c): ST-index(R,1)=3, (R,2)=0, (R,3)=1, (R,4)=2.
  EXPECT_EQ(tracker.at(0), 3u);
  EXPECT_EQ(tracker.at(1), 0u);
  EXPECT_EQ(tracker.at(2), 1u);
  EXPECT_EQ(tracker.at(3), 2u);
  // And the protocol state matches Figure 4(b)'s final row.
  EXPECT_EQ(proto.slot_block(s, 0), 2);   // B3
  EXPECT_EQ(proto.slot_value(s, 0), 3);
  EXPECT_EQ(proto.slot_block(s, 2), 0);   // B1 shared into P2
  EXPECT_EQ(proto.slot_value(s, 2), 1);
  EXPECT_EQ(proto.slot_block(s, 3), 1);   // B2
  EXPECT_EQ(proto.slot_value(s, 3), 2);
}

TEST(GetSharedToy, StaleViewsMakeItNonSc) {
  // P1 stores 1 then 2 into different slots; reading the stale slot after
  // the newer store yields a non-SC trace — the toy protocol is broken by
  // design (it exists to illustrate tracking labels).
  GetSharedToy proto(1, 1, 2, 2);
  std::vector<std::uint8_t> s(proto.state_size());
  proto.initial_state(s);
  Trace trace;
  const auto step = [&](const Transition& t) {
    proto.apply(s, t);
    if (t.action.is_memory_op()) trace.push_back(t.action.op);
  };
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.value == 1 &&
           t.loc == 0;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.value == 2 &&
           t.loc == 1;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.loc == 1;
  }));
  step(find_transition(proto, s, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.loc == 0;
  }));
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(trace)) << to_string(trace);
}

}  // namespace
}  // namespace scv
