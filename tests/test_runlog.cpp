// Tests for the run-trace subsystem: the versioned binary format (total
// parsing of untrusted bytes included), the symbol-sink pipeline, offline
// re-verification of recorded streams, deterministic recording across
// engines, and the checker-config validation the trace header relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mc/model_checker.hpp"
#include "mc/record.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"
#include "runlog/replay.hpp"
#include "runlog/run_trace.hpp"
#include "runlog/sinks.hpp"

namespace scv {
namespace {

RunTrace sample_trace() {
  RunTrace t;
  t.protocol = "SampleProto";
  t.checker = ScCheckerConfig{8, 2, 2, 2, false};
  t.verdict = RunVerdict::Violation;
  t.reason = "edge closes a cycle";
  RunStep s1;
  s1.action = "ST(P1,B1,1)";
  s1.symbols.push_back(NodeDesc{1, make_store(0, 0, 1)});
  RunStep s2;
  s2.action = "LD(P2,B1,1)";
  s2.symbols.push_back(NodeDesc{2, make_load(1, 0, 1)});
  s2.symbols.push_back(EdgeDesc{1, 2, kAnnoInh});
  s2.symbols.push_back(AddId{2, 9});
  t.steps = {s1, s2};
  return t;
}

// ------------------------------------------------------- format roundtrip

TEST(RunTraceFormat, RoundTripsThroughBytes) {
  const RunTrace original = sample_trace();
  ByteWriter w;
  serialize_run_trace(original, w);

  RunTrace parsed;
  std::string error;
  ASSERT_TRUE(parse_run_trace(w.data(), parsed, error)) << error;
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(parsed.symbol_count(), 4u);
}

TEST(RunTraceFormat, RoundTripsThroughFile) {
  const RunTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "runlog_roundtrip.trace";
  std::string error;
  ASSERT_TRUE(write_run_trace(path, original, error)) << error;
  RunTrace read;
  ASSERT_TRUE(read_run_trace(path, read, error)) << error;
  EXPECT_EQ(read, original);
  std::remove(path.c_str());
}

TEST(RunTraceFormat, VerdictNames) {
  EXPECT_EQ(to_string(RunVerdict::Accepted), "Accepted");
  EXPECT_EQ(to_string(RunVerdict::Violation), "Violation");
  EXPECT_EQ(to_string(RunVerdict::BandwidthExceeded), "BandwidthExceeded");
  EXPECT_EQ(to_string(RunVerdict::TrackingInconsistent),
            "TrackingInconsistent");
}

// Untrusted input: every structural corruption must come back as an error
// string, never an abort or a garbage trace.
TEST(RunTraceFormat, ParsingIsTotalOnCorruptInput) {
  ByteWriter w;
  serialize_run_trace(sample_trace(), w);
  const std::vector<std::uint8_t> good = w.data();

  RunTrace out;
  std::string error;

  // Empty buffer and bad magic.
  EXPECT_FALSE(parse_run_trace({}, out, error));
  std::vector<std::uint8_t> bad = good;
  bad[0] = 'X';
  EXPECT_FALSE(parse_run_trace(bad, out, error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  // Unsupported version.
  bad = good;
  bad[4] = 0xff;
  EXPECT_FALSE(parse_run_trace(bad, out, error));
  EXPECT_NE(error.find("version"), std::string::npos);

  // Truncation at every prefix length must fail cleanly (the full buffer
  // parses, so any strict prefix is structurally incomplete).
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(parse_run_trace(std::span(good.data(), n), out, error))
        << "prefix of " << n << " bytes parsed";
  }

  // Trailing garbage after a well-formed trace.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(parse_run_trace(bad, out, error));
  EXPECT_NE(error.find("trailing"), std::string::npos);

  // Every single-byte corruption either parses or errors — never crashes.
  for (std::size_t i = 0; i < good.size(); ++i) {
    bad = good;
    bad[i] ^= 0x5a;
    (void)parse_run_trace(bad, out, error);
  }
}

TEST(RunTraceFormat, RejectsAbsurdCounts) {
  // A step count larger than the remaining buffer must be rejected before
  // any reservation happens (no multi-GB allocations from an 8-byte file).
  ByteWriter w;
  w.bytes(std::array<std::uint8_t, 4>{'S', 'C', 'V', 'R'});
  w.u16(RunTrace::kVersion);
  w.uvar(0);  // protocol ""
  w.uvar(8);  // k
  w.u8(2);
  w.u8(2);
  w.u8(2);
  w.u8(0);   // coherence
  w.uvar(2); // model tag "sc"
  w.u8('s');
  w.u8('c');
  w.u8(0);              // verdict
  w.uvar(0);            // reason ""
  w.uvar(0xffffffffu);  // absurd step count
  RunTrace out;
  std::string error;
  EXPECT_FALSE(parse_run_trace(w.data(), out, error));
  EXPECT_NE(error.find("count"), std::string::npos);
}

// ------------------------------------------------- version compatibility

// Version 1 predates the model axis: its header stops at the coherence
// byte and there is no model tag on the wire.  Parsing stays total over
// the old format, with the model defaulting to SC (the only model v1
// runs could have checked; the coherence alias byte still applies).
TEST(RunTraceFormat, ParsesVersion1FilesWithoutModelTag) {
  ByteWriter w;
  w.bytes(std::array<std::uint8_t, 4>{'S', 'C', 'V', 'R'});
  w.u16(1);  // version 1
  const std::string proto = "LegacyProto";
  w.uvar(proto.size());
  w.bytes({reinterpret_cast<const std::uint8_t*>(proto.data()),
           proto.size()});
  w.uvar(8);  // k
  w.u8(2);    // procs
  w.u8(1);    // blocks
  w.u8(1);    // values
  w.u8(1);    // coherence_po alias set — v1's only model knob
  w.u8(0);    // verdict: Accepted
  w.uvar(0);  // reason ""
  w.uvar(0);  // no steps
  RunTrace parsed;
  std::string error;
  ASSERT_TRUE(parse_run_trace(w.data(), parsed, error)) << error;
  EXPECT_EQ(parsed.protocol, proto);
  EXPECT_EQ(parsed.checker.model, MemoryModel{});  // defaults to sc
  EXPECT_TRUE(parsed.checker.coherence_po);
  EXPECT_EQ(parsed.checker.effective_model().kind, ModelKind::Coherence);
  EXPECT_EQ(parsed.verdict, RunVerdict::Accepted);

  // Truncating the v1 stream anywhere still fails cleanly.
  const std::vector<std::uint8_t> good = w.data();
  RunTrace out;
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(parse_run_trace(std::span(good.data(), n), out, error))
        << "v1 prefix of " << n << " bytes parsed";
  }
}

TEST(RunTraceFormat, ModelTagRoundTripsInVersion2) {
  for (const MemoryModel model :
       {MemoryModel::tso(), MemoryModel::coherence(),
        MemoryModel::bounded_sc(3)}) {
    RunTrace t = sample_trace();
    t.checker.model = model;
    ByteWriter w;
    serialize_run_trace(t, w);
    RunTrace parsed;
    std::string error;
    ASSERT_TRUE(parse_run_trace(w.data(), parsed, error)) << error;
    EXPECT_EQ(parsed.checker.model, model) << to_string(model);
    EXPECT_EQ(parsed, t);
  }
}

TEST(RunTraceFormat, RejectsUnknownModelTag) {
  ByteWriter w;
  w.bytes(std::array<std::uint8_t, 4>{'S', 'C', 'V', 'R'});
  w.u16(RunTrace::kVersion);
  w.uvar(0);  // protocol ""
  w.uvar(8);  // k
  w.u8(2);
  w.u8(1);
  w.u8(1);
  w.u8(0);    // coherence
  w.uvar(2);  // model tag "zz" — not a model
  w.u8('z');
  w.u8('z');
  w.u8(0);
  w.uvar(0);
  w.uvar(0);
  RunTrace out;
  std::string error;
  EXPECT_FALSE(parse_run_trace(w.data(), out, error));
  EXPECT_NE(error.find("memory-model"), std::string::npos);
}

// ---------------------------------------------------------------- sinks

TEST(Sinks, RecorderGroupsSymbolsByStep) {
  RunRecorder rec;
  rec.begin_step("a");
  rec.on_symbol(NodeDesc{1, make_store(0, 0, 1)});
  rec.end_step();
  rec.begin_step("b");
  rec.on_symbol(EdgeDesc{1, 2, kAnnoPo});
  rec.on_symbol(AddId{1, 2});
  rec.end_step();

  const auto steps = rec.take();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].action, "a");
  EXPECT_EQ(steps[0].symbols.size(), 1u);
  EXPECT_EQ(steps[1].action, "b");
  EXPECT_EQ(steps[1].symbols.size(), 2u);
}

TEST(Sinks, StatsSinkCountsKindsAndTracksBoundIds) {
  SymbolStatsSink sink(/*null_id=*/9);
  sink.begin_step("s1");
  sink.on_symbol(NodeDesc{1, make_store(0, 0, 1)});
  sink.on_symbol(NodeDesc{2, make_load(1, 0, 1)});
  sink.on_symbol(EdgeDesc{1, 2, kAnnoInh});
  sink.on_symbol(EdgeDesc{1, 2, kAnnoPo});
  sink.on_symbol(EdgeDesc{1, 2, kAnnoSto});
  sink.on_symbol(EdgeDesc{1, 2, kAnnoForced});
  sink.end_step();
  sink.begin_step("s2");
  sink.on_symbol(AddId{2, 3});   // bind 3
  sink.on_symbol(AddId{1, 9});   // retire node holding 1 (9 is the null ID)
  sink.end_step();

  const SymbolStats& s = sink.stats();
  EXPECT_EQ(s.steps, 2u);
  EXPECT_EQ(s.node_descs, 2u);
  EXPECT_EQ(s.add_ids, 2u);
  EXPECT_EQ(s.po_edges, 1u);
  EXPECT_EQ(s.sto_edges, 1u);
  EXPECT_EQ(s.inh_edges, 1u);
  EXPECT_EQ(s.forced_edges, 1u);
  EXPECT_EQ(s.edges(), 4u);
  EXPECT_EQ(s.symbols(), 8u);
  EXPECT_EQ(s.peak_bound_ids, 3u);  // {1,2,3} before the retirement
  EXPECT_NE(s.summary().find("steps=2"), std::string::npos);
}

TEST(Sinks, StatsMergeAddsCountersAndMaxesPeaks) {
  SymbolStats a;
  a.steps = 3;
  a.po_edges = 2;
  a.peak_bound_ids = 4;
  SymbolStats b;
  b.steps = 5;
  b.po_edges = 1;
  b.peak_bound_ids = 7;
  a.merge(b);
  EXPECT_EQ(a.steps, 8u);
  EXPECT_EQ(a.po_edges, 3u);
  EXPECT_EQ(a.peak_bound_ids, 7u);
}

// -------------------------------------------------- offline re-checking

TEST(TraceCheck, RecordedWalkReplaysClean) {
  MsiBus proto(2, 2, 1);
  RecordWalkOptions opt;
  opt.steps = 250;
  opt.seed = 42;
  const RunTrace trace = record_walk(proto, opt);
  EXPECT_EQ(trace.verdict, RunVerdict::Accepted);
  EXPECT_EQ(trace.protocol, proto.name());
  EXPECT_GT(trace.steps.size(), 0u);

  const TraceCheckResult r = check_trace(trace);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.accepted) << r.reject_reason;
  EXPECT_TRUE(r.matches_recorded(trace.verdict));
  EXPECT_EQ(r.steps_fed, trace.steps.size());
  EXPECT_EQ(r.symbols_fed, trace.symbol_count());
  EXPECT_GT(r.stats.peak_bound_ids, 0u);
}

TEST(TraceCheck, RecordedWalkIsDeterministic) {
  MsiBus proto(2, 1, 1);
  RecordWalkOptions opt;
  opt.steps = 120;
  opt.seed = 9;
  const RunTrace a = record_walk(proto, opt);
  const RunTrace b = record_walk(proto, opt);
  EXPECT_EQ(a, b);
  ByteWriter wa;
  ByteWriter wb;
  serialize_run_trace(a, wa);
  serialize_run_trace(b, wb);
  EXPECT_EQ(wa.data(), wb.data());

  opt.seed = 10;
  const RunTrace c = record_walk(proto, opt);
  EXPECT_FALSE(c == a);  // different seed, different walk
}

TEST(TraceCheck, ExportedViolationReplaysToReject) {
  WriteBuffer proto(2, 2, 1, 1, false);
  McOptions opt;
  opt.record_counterexample = true;
  const McResult r = model_check(proto, opt);
  ASSERT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  ASSERT_TRUE(r.counterexample_trace.has_value());
  const RunTrace& trace = *r.counterexample_trace;
  EXPECT_EQ(trace.verdict, RunVerdict::Violation);
  EXPECT_EQ(trace.steps.size(), r.counterexample.size());
  EXPECT_EQ(trace.reason, r.reason);

  const TraceCheckResult chk = check_trace(trace);
  ASSERT_TRUE(chk.ok) << chk.error;
  EXPECT_FALSE(chk.accepted);
  EXPECT_EQ(chk.reject_reason, r.reason);
  EXPECT_TRUE(chk.matches_recorded(trace.verdict));
}

TEST(TraceCheck, VerifiedRunRecordsNoCounterexample) {
  SerialMemory proto(2, 1, 1);
  McOptions opt;
  opt.record_counterexample = true;
  const McResult r = model_check(proto, opt);
  EXPECT_EQ(r.verdict, McVerdict::Verified);
  EXPECT_FALSE(r.counterexample_trace.has_value());
}

TEST(TraceCheck, BadHeaderConfigIsRecoverableError) {
  RunTrace trace = sample_trace();
  trace.checker.procs = kMaxProcs + 3;
  const TraceCheckResult r = check_trace(trace);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("procs"), std::string::npos);
  EXPECT_FALSE(r.matches_recorded(trace.verdict));
}

// ------------------------------------- deterministic cross-engine export

TEST(TraceCheck, SeqAndParCounterexampleRecordingsAreByteIdentical) {
  // The acceptance bar for recorded evidence: the parallel engine's
  // exported violation trace must equal the sequential engine's, byte for
  // byte (the multi-worker run delegates failure reporting to the
  // deterministic single-worker engine precisely for this).
  MsiBus proto(2, 1, 1, /*lost_invalidation=*/true);
  McOptions seq;
  seq.record_counterexample = true;
  McOptions par = seq;
  par.threads = 3;
  const McResult rs = model_check(proto, seq);
  const McResult rp = model_check(proto, par);
  ASSERT_EQ(rs.verdict, McVerdict::Violation) << rs.summary();
  ASSERT_EQ(rp.verdict, McVerdict::Violation) << rp.summary();
  ASSERT_TRUE(rs.counterexample_trace.has_value());
  ASSERT_TRUE(rp.counterexample_trace.has_value());
  EXPECT_EQ(*rs.counterexample_trace, *rp.counterexample_trace);

  ByteWriter ws;
  ByteWriter wp;
  serialize_run_trace(*rs.counterexample_trace, ws);
  serialize_run_trace(*rp.counterexample_trace, wp);
  EXPECT_EQ(ws.data(), wp.data());
}

// ------------------------------------------------- exploration statistics

TEST(SymbolStatsOption, ModelCheckAggregatesStreamCounts) {
  MsiBus proto(2, 1, 1);
  McOptions opt;
  opt.symbol_stats = true;
  // Presize the visited store: a mid-level growth aborts and re-executes
  // the in-flight entry, and those re-stepped transitions are (correctly)
  // counted again by the stream stats.  With no growth the counts are an
  // exact function of the explored graph, identical across engines.
  opt.visited_size_hint = 1u << 18;
  const McResult r = model_check(proto, opt);
  ASSERT_EQ(r.verdict, McVerdict::Verified) << r.summary();
  EXPECT_EQ(r.symbol_stats.steps, r.transitions);
  EXPECT_GT(r.symbol_stats.node_descs, 0u);
  EXPECT_GT(r.symbol_stats.po_edges, 0u);

  // The counters describe the exploration stream, which is identical work
  // across thread counts on a full exploration.
  McOptions par = opt;
  par.threads = 3;
  const McResult rp = model_check(proto, par);
  EXPECT_EQ(rp.symbol_stats.steps, r.symbol_stats.steps);
  EXPECT_EQ(rp.symbol_stats.node_descs, r.symbol_stats.node_descs);
  EXPECT_EQ(rp.symbol_stats.edges(), r.symbol_stats.edges());
}

// ------------------------------------------- checker config validation

TEST(CheckerConfig, InvalidReasonPinpointsTheField) {
  EXPECT_TRUE(ScCheckerConfig{}.invalid_reason().empty());
  EXPECT_TRUE(
      (ScCheckerConfig{kMaxBandwidth, kMaxProcs, kMaxBlocks, 255, true})
          .invalid_reason()
          .empty());

  ScCheckerConfig c;
  c.k = 0;
  EXPECT_NE(c.invalid_reason().find("k = 0"), std::string::npos);
  c = ScCheckerConfig{};
  c.k = kMaxBandwidth + 1;
  EXPECT_NE(c.invalid_reason().find("kMaxBandwidth"), std::string::npos);
  c = ScCheckerConfig{};
  c.procs = kMaxProcs + 1;
  EXPECT_NE(c.invalid_reason().find("procs = 7"), std::string::npos);
  c = ScCheckerConfig{};
  c.blocks = kMaxBlocks + 2;
  EXPECT_NE(c.invalid_reason().find("kMaxBlocks"), std::string::npos);
  c = ScCheckerConfig{};
  c.values = 0;
  EXPECT_NE(c.invalid_reason().find("values"), std::string::npos);
  c = ScCheckerConfig{};
  c.values = 256;
  EXPECT_NE(c.invalid_reason().find("values"), std::string::npos);
}

TEST(CheckerConfig, InvalidReasonRejectsInconsistentModelCombinations) {
  // Valid model configurations first: each axis model alone, and a
  // preemption budget on sc.
  ScCheckerConfig c;
  c.model = MemoryModel::tso();
  EXPECT_TRUE(c.invalid_reason().empty());
  c.model = MemoryModel::coherence();
  EXPECT_TRUE(c.invalid_reason().empty());
  c.model = MemoryModel::bounded_sc(2);
  EXPECT_TRUE(c.invalid_reason().empty());

  // Bounded preemption under-approximates; it is sc-only.
  c = ScCheckerConfig{};
  c.model = MemoryModel::tso();
  c.model.preemption_bound = 1;
  EXPECT_NE(c.invalid_reason().find("preemption"), std::string::npos);
  c.model = MemoryModel::coherence();
  c.model.preemption_bound = 0;
  EXPECT_NE(c.invalid_reason().find("preemption"), std::string::npos);

  // The deprecated coherence_po alias may not contradict an explicit model.
  c = ScCheckerConfig{};
  c.coherence_po = true;
  EXPECT_TRUE(c.invalid_reason().empty());  // alias alone stays valid
  c.model = MemoryModel::tso();
  EXPECT_NE(c.invalid_reason().find("coherence_po"), std::string::npos);
  c.model = MemoryModel::bounded_sc(3);
  EXPECT_NE(c.invalid_reason().find("coherence_po"), std::string::npos);
  // Alias on an explicit coherence model is redundant, not contradictory.
  c.model = MemoryModel::coherence();
  EXPECT_TRUE(c.invalid_reason().empty());
  EXPECT_EQ(c.effective_model().kind, ModelKind::Coherence);
}

using CheckerConfigDeathTest = ::testing::Test;

TEST(CheckerConfigDeathTest, ConstructorAbortsOnOutOfRangeConfig) {
  EXPECT_DEATH(ScChecker(ScCheckerConfig{0, 2, 1, 1, false}),
               "invalid ScCheckerConfig");
  EXPECT_DEATH(ScChecker(ScCheckerConfig{8, kMaxProcs + 1, 1, 1, false}),
               "invalid ScCheckerConfig");
  EXPECT_DEATH(ScChecker(ScCheckerConfig{8, 2, kMaxBlocks + 1, 1, false}),
               "invalid ScCheckerConfig");
  EXPECT_DEATH(ScChecker(ScCheckerConfig{8, 2, 1, 0, false}),
               "invalid ScCheckerConfig");
}

TEST(CheckerConfigDeathTest, ConstructorAbortsOnInconsistentModelCombo) {
  ScCheckerConfig tso_bp{};
  tso_bp.model = MemoryModel::tso();
  tso_bp.model.preemption_bound = 1;
  EXPECT_DEATH(ScChecker{tso_bp}, "invalid ScCheckerConfig");

  ScCheckerConfig alias_vs_model{};
  alias_vs_model.coherence_po = true;
  alias_vs_model.model = MemoryModel::tso();
  EXPECT_DEATH(ScChecker{alias_vs_model}, "invalid ScCheckerConfig");
}

}  // namespace
}  // namespace scv
