#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/byte_io.hpp"
#include "util/hash.hpp"
#include "util/inline_vec.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scv {
namespace {

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // FNV-1a test vectors: empty string and "a".
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ULL);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 1000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Rng, DeterministicGivenSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(InlineVec, PushPopAndIterate) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
}

TEST(InlineVec, TryPushReportsOverflow) {
  InlineVec<int, 2> v;
  EXPECT_TRUE(v.try_push_back(1));
  EXPECT_TRUE(v.try_push_back(2));
  EXPECT_FALSE(v.try_push_back(3));
  EXPECT_TRUE(v.full());
}

TEST(InlineVec, EraseAtPreservesOrder) {
  InlineVec<int, 4> v{10, 20, 30, 40};
  v.erase_at(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
}

TEST(InlineVec, SwapEraseIsO1) {
  InlineVec<int, 4> v{10, 20, 30, 40};
  v.swap_erase_at(0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 40);
}

TEST(InlineVec, ContainsAndEquality) {
  InlineVec<int, 4> a{1, 2, 3};
  InlineVec<int, 4> b{1, 2, 3};
  EXPECT_TRUE(a.contains(2));
  EXPECT_FALSE(a.contains(9));
  EXPECT_EQ(a, b);
  b.push_back(4);
  EXPECT_FALSE(a == b);
}

TEST(ByteIo, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.uvar(0);
  w.uvar(127);
  w.uvar(128);
  w.uvar(0xffffffffffULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.uvar(), 0u);
  EXPECT_EQ(r.uvar(), 127u);
  EXPECT_EQ(r.uvar(), 128u);
  EXPECT_EQ(r.uvar(), 0xffffffffffULL);
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
}

TEST(ByteIo, HexDump) {
  ByteWriter w;
  w.u8(0x0f);
  w.u8(0xa0);
  EXPECT_EQ(to_hex(w.data()), "0fa0");
}

TEST(Strings, JoinAndPad) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(ThreadPool, RunsOnAllWorkers) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::atomic<int> mask{0};
  pool.run_on_all([&](std::size_t i) {
    count.fetch_add(1);
    mask.fetch_or(1 << i);
  });
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(mask.load(), 0b111);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int calls = 0;
  pool.run_on_all([&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run_on_all([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20);
}

}  // namespace
}  // namespace scv
