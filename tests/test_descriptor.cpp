// Tests for the k-graph descriptor notation (Section 3.2): the ID-set
// update rules, expansion, the Lemma 3.2 emitter, the naive descriptor, and
// the Figure 3 example strings from the paper.
#include <gtest/gtest.h>

#include "descriptor/descriptor.hpp"
#include "graph/constraint_graph.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace scv {
namespace {

// ------------------------------------------------------- ID-set semantics

TEST(IdSets, NodeDescriptorStartsFreshNode) {
  Descriptor d;
  d.k = 2;
  d.symbols = {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_EQ(r.graph->graph.node_count(), 2u);
  EXPECT_TRUE(r.graph->graph.has_edge(0, 1));
}

TEST(IdSets, ReusedIdRetiresOldNode) {
  Descriptor d;
  d.k = 1;
  // Node 1 gets ID 1; reusing ID 1 creates node 2; the edge now refers to
  // the *new* node: self-edges on (1,1)? No: edge (1,2) across the two IDs.
  d.symbols = {NodeDesc{1}, NodeDesc{2}, NodeDesc{1}, EdgeDesc{1, 2}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_EQ(r.graph->graph.node_count(), 3u);
  EXPECT_TRUE(r.graph->graph.has_edge(2, 1));  // third node -> second node
  EXPECT_FALSE(r.graph->graph.has_edge(0, 1));
}

TEST(IdSets, AddIdCreatesAlias) {
  Descriptor d;
  d.k = 2;
  d.symbols = {NodeDesc{1}, AddId{1, 2}, NodeDesc{3}, EdgeDesc{2, 3}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_TRUE(r.graph->graph.has_edge(0, 1));  // via alias 2
}

TEST(IdSets, AddIdStealsIdFromPreviousHolder) {
  Descriptor d;
  d.k = 2;
  // Node A holds {1}, node B holds {2}.  add-ID(1,2) moves ID 2 to node A;
  // edges via ID 2 now reach node A, and node B is unaddressable.
  d.symbols = {NodeDesc{1}, NodeDesc{2}, AddId{1, 2}, NodeDesc{3},
               EdgeDesc{3, 2}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_TRUE(r.graph->graph.has_edge(2, 0));
}

TEST(IdSets, AddIdFromUnboundIdUnbindsTarget) {
  Descriptor d;
  d.k = 2;
  // ID 3 is bound to nothing; add-ID(3,1) strips ID 1 from node A, making
  // it unaddressable — the descriptor-level "retire" idiom the observer
  // uses.  A subsequent edge on ID 1 is invalid.
  d.symbols = {NodeDesc{1}, AddId{3, 1}, NodeDesc{2}, EdgeDesc{1, 2}};
  const auto r = expand(d);
  EXPECT_FALSE(r.graph.has_value());
  EXPECT_NE(r.error.find("not in any node"), std::string::npos);
}

TEST(IdSets, AddIdSelfIsNoOp) {
  Descriptor d;
  d.k = 1;
  d.symbols = {NodeDesc{1}, AddId{1, 1}, NodeDesc{2}, EdgeDesc{1, 2}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_TRUE(r.graph->graph.has_edge(0, 1));
}

TEST(IdSets, EdgeOnUnboundIdIsInvalid) {
  Descriptor d;
  d.k = 2;
  d.symbols = {NodeDesc{1}, EdgeDesc{1, 3}};
  const auto r = expand(d);
  EXPECT_FALSE(r.graph.has_value());
}

TEST(IdSets, IdOutOfRangeIsInvalid) {
  Descriptor d;
  d.k = 2;  // valid IDs 1..3
  d.symbols = {NodeDesc{4}};
  EXPECT_FALSE(expand(d).graph.has_value());
  d.symbols = {NodeDesc{0}};
  EXPECT_FALSE(expand(d).graph.has_value());
}

TEST(IdSets, EdgeLabelsMergeOnRepeat) {
  Descriptor d;
  d.k = 2;
  d.symbols = {NodeDesc{1}, NodeDesc{2}, EdgeDesc{1, 2, kAnnoPo},
               EdgeDesc{1, 2, kAnnoSto}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value());
  EXPECT_EQ(r.graph->annotation(0, 1), kAnnoPo | kAnnoSto);
}

TEST(IdSets, LabelsAttachToNodes) {
  Descriptor d;
  d.k = 1;
  d.symbols = {NodeDesc{1, make_store(0, 0, 1)},
               NodeDesc{2, make_load(1, 0, 1)}};
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value());
  ASSERT_TRUE(r.graph->node_labels[0].has_value());
  EXPECT_TRUE(r.graph->node_labels[0]->is_store());
  ASSERT_TRUE(r.graph->node_labels[1].has_value());
  EXPECT_TRUE(r.graph->node_labels[1]->is_load());
}

// -------------------------------------------------- Figure 3 descriptors

TEST(Fig3Descriptor, PaperRecycledDescriptorExpandsToFig3Graph) {
  // The paper's 3-bandwidth descriptor for Figure 3, with ID 1 recycled
  // for node 5:
  //   1, ST(P1,B,1), 2, LD(P2,B,1), (1,2) inh, 3, ST(P1,B,2), (1,3) po-STo,
  //   4, LD(P2,B,1), (1,4) inh, (2,4) po, (4,3) forced,
  //   1, LD(P2,B,2), (3,1) inh, (4,1) po
  Descriptor d;
  d.k = 3;
  d.symbols = {
      NodeDesc{1, make_store(0, 0, 1)},
      NodeDesc{2, make_load(1, 0, 1)},
      EdgeDesc{1, 2, kAnnoInh},
      NodeDesc{3, make_store(0, 0, 2)},
      EdgeDesc{1, 3, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)},
      NodeDesc{4, make_load(1, 0, 1)},
      EdgeDesc{1, 4, kAnnoInh},
      EdgeDesc{2, 4, kAnnoPo},
      EdgeDesc{4, 3, kAnnoForced},
      NodeDesc{1, make_load(1, 0, 2)},
      EdgeDesc{3, 1, kAnnoInh},
      EdgeDesc{4, 1, kAnnoPo},
  };
  const auto r = expand(d);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  const Fig3Example ex = figure3_example();
  EXPECT_TRUE(r.graph->graph.same_edges(ex.graph.digraph()));
  for (std::uint32_t u = 0; u < 5; ++u) {
    for (std::uint32_t v = 0; v < 5; ++v) {
      EXPECT_EQ(r.graph->annotation(u, v), ex.graph.annotation(u, v))
          << u << "," << v;
    }
  }
}

TEST(Fig3Descriptor, NaiveDescriptorAlsoExpandsToFig3Graph) {
  const Fig3Example ex = figure3_example();
  std::vector<std::optional<Operation>> labels;
  for (const Operation& op : ex.trace) labels.emplace_back(op);
  const Descriptor naive = naive_descriptor(ex.graph.digraph(), &labels);
  EXPECT_EQ(naive.k, 4u);  // IDs 1..5, no recycling
  const auto r = expand(naive);
  ASSERT_TRUE(r.graph.has_value()) << r.error;
  EXPECT_TRUE(r.graph->graph.same_edges(ex.graph.digraph()));
}

// ------------------------------------------------- Lemma 3.2 (round trip)

DiGraph random_bounded_graph(Xoshiro256& rng, std::size_t n,
                             std::size_t span) {
  // Edges only between nodes at distance <= span, so bandwidth <= span.
  DiGraph g(n);
  const std::size_t edges = n + rng.below(n + 1);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.below(n));
    const std::size_t lo = u < span ? 0 : u - span;
    const std::size_t hi = std::min<std::size_t>(n - 1, u + span);
    const auto v = static_cast<std::uint32_t>(rng.between(lo, hi));
    if (u != v) g.add_edge(u, v);
  }
  return g;
}

TEST(Lemma32, RoundTripOnRandomBandwidthBoundedGraphs) {
  Xoshiro256 rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 2 + rng.below(30);
    const std::size_t span = 1 + rng.below(4);
    const DiGraph g = random_bounded_graph(rng, n, span);
    const std::size_t bw = g.node_bandwidth();
    ASSERT_LE(bw, 2 * span);  // sanity on the generator
    const std::size_t k = std::max<std::size_t>(bw, 1);
    const Descriptor d = descriptor_for_graph(g, k);
    const auto r = expand(d);
    ASSERT_TRUE(r.graph.has_value()) << r.error;
    EXPECT_TRUE(r.graph->graph.same_edges(g)) << "n=" << n << " k=" << k;
  }
}

TEST(Lemma32, EmitterNeverExceedsKPlusOneIds) {
  Xoshiro256 rng(78);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 2 + rng.below(20);
    const DiGraph g = random_bounded_graph(rng, n, 2);
    const std::size_t k = std::max<std::size_t>(g.node_bandwidth(), 1);
    const Descriptor d = descriptor_for_graph(g, k);
    for (const Symbol& sym : d.symbols) {
      if (const auto* nd = std::get_if<NodeDesc>(&sym)) {
        EXPECT_GE(nd->id, 1);
        EXPECT_LE(nd->id, k + 1);
      }
    }
  }
}

TEST(Lemma32, ConstraintGraphsRoundTripWithAnnotations) {
  Xoshiro256 rng(79);
  TraceGenParams params;
  params.processors = 2;
  params.blocks = 2;
  params.length = 20;
  for (int iter = 0; iter < 30; ++iter) {
    const auto sc = random_sc_trace(params, rng);
    const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
    std::vector<std::optional<Operation>> labels;
    for (const Operation& op : sc.trace) labels.emplace_back(op);
    // Re-pack annotations in adjacency-parallel layout for the emitter.
    std::vector<std::vector<std::uint8_t>> annos(g.node_count());
    for (std::uint32_t u = 0; u < g.node_count(); ++u) {
      for (std::uint32_t v : g.digraph().successors(u)) {
        annos[u].push_back(g.annotation(u, v));
      }
    }
    const std::size_t k = std::max<std::size_t>(g.node_bandwidth(), 1);
    const Descriptor d = descriptor_for_graph(g.digraph(), k, &labels, &annos);
    const auto r = expand(d);
    ASSERT_TRUE(r.graph.has_value()) << r.error;
    EXPECT_TRUE(r.graph->graph.same_edges(g.digraph()));
    for (std::uint32_t u = 0; u < g.node_count(); ++u) {
      for (std::uint32_t v : g.digraph().successors(u)) {
        EXPECT_EQ(r.graph->annotation(u, v), g.annotation(u, v));
      }
      ASSERT_TRUE(r.graph->node_labels[u].has_value());
      EXPECT_EQ(*r.graph->node_labels[u], sc.trace[u]);
    }
  }
}

TEST(DescriptorStrings, RenderFig3Prefix) {
  Descriptor d;
  d.k = 3;
  d.symbols = {NodeDesc{1, make_store(0, 0, 1)},
               NodeDesc{2, make_load(1, 0, 1)}, EdgeDesc{1, 2, kAnnoInh},
               AddId{1, 3}};
  EXPECT_EQ(d.to_string(),
            "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, add-ID(1,3)");
}

}  // namespace
}  // namespace scv
