// Shared test helper: random walks over a protocol with independent
// ST-index tracking (trace-indexed, as in Figure 4), used to check that
// tracking labels tell the truth and to collect traces for the SC oracle.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "protocol/protocol.hpp"
#include "protocol/st_index.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace scv::testing {

struct WalkResult {
  Trace trace;                         ///< LD/ST operations, in order
  std::vector<Transition> transitions; ///< every transition taken
  /// Set if a load's value disagreed with the store its location tracks
  /// (tracking labels inconsistent) — never expected for our protocols.
  std::optional<std::size_t> tracking_violation;
};

/// Walks `steps` random transitions, maintaining a trace-indexed
/// StIndexTracker exactly as Section 4.1 prescribes, and validates at every
/// load that the tracked store matches the loaded (block, value) — or that
/// the location tracks nothing and the load returned ⊥.
inline WalkResult random_walk(const Protocol& proto, std::size_t steps,
                              std::uint64_t seed,
                              unsigned memory_op_percent = 60) {
  Xoshiro256 rng(seed);
  WalkResult result;
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  StIndexTracker tracker(proto.params().locations);

  std::vector<Transition> enabled;
  std::vector<Transition> ops;
  for (std::size_t i = 0; i < steps; ++i) {
    enabled.clear();
    proto.enumerate(state, enabled);
    if (enabled.empty()) break;
    ops.clear();
    for (const Transition& t : enabled) {
      if (t.action.is_memory_op()) ops.push_back(t);
    }
    const Transition chosen =
        (!ops.empty() && rng.chance(memory_op_percent, 100))
            ? ops[rng.below(ops.size())]
            : enabled[rng.below(enabled.size())];

    if (chosen.action.kind == Action::Kind::Load) {
      const std::uint32_t idx = tracker.at(chosen.loc);
      const Operation& op = chosen.action.op;
      const bool ok =
          (idx == StIndexTracker::kNoStore)
              ? op.value == kBottom
              : (result.trace[idx - 1].is_store() &&
                 result.trace[idx - 1].block == op.block &&
                 result.trace[idx - 1].value == op.value);
      if (!ok && !result.tracking_violation) {
        result.tracking_violation = result.trace.size();
      }
    }

    proto.apply(state, chosen);
    if (chosen.action.is_memory_op()) {
      result.trace.push_back(chosen.action.op);
    }
    if (chosen.action.kind == Action::Kind::Store) {
      tracker.on_store(chosen.loc,
                       static_cast<std::uint32_t>(result.trace.size()));
    }
    if (!chosen.copies.empty()) {
      tracker.on_copies({chosen.copies.begin(), chosen.copies.size()});
    }
    result.transitions.push_back(chosen);
  }
  return result;
}

/// Finds the unique enabled transition matching `pred`; aborts if absent or
/// ambiguous matches with different effects are fine for driving scripts.
inline Transition find_transition(
    const Protocol& proto, std::span<const std::uint8_t> state,
    const std::function<bool(const Transition&)>& pred) {
  std::vector<Transition> enabled;
  proto.enumerate(state, enabled);
  for (const Transition& t : enabled) {
    if (pred(t)) return t;
  }
  SCV_UNREACHABLE("no enabled transition matches the predicate");
}

}  // namespace scv::testing
