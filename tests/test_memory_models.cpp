// Tests for the memory-model extension (paper §5, "extending these
// techniques to other memory models"): verifying *coherence* (per-location
// SC) by restricting program order edges to (processor, block) chains, the
// drain-order (deferred) ST serialization option of the write buffer, the
// TSO instantiation of the model axis, and the bounded-preemption
// exploration mode.
#include <gtest/gtest.h>

#include "checker/memory_model.hpp"
#include "checker/sc_checker.hpp"
#include "core/verifier.hpp"
#include "observer/observer.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"

namespace scv {
namespace {

McResult verify_coherence(const Protocol& proto) {
  McOptions opt;
  opt.observer.coherence_only = true;
  return verify_sc(proto, opt);
}

McResult verify_model(const Protocol& proto, const MemoryModel& model,
                      std::size_t max_states = 0) {
  McOptions opt;
  opt.observer.model = model;
  if (max_states != 0) opt.max_states = max_states;
  return verify_sc(proto, opt);
}

// --------------------------------------------------------- the headline

TEST(Coherence, ForwardingWriteBufferIsCoherentButNotSc) {
  // TSO in miniature: under drain-order serialization the forwarding
  // buffer is per-location SC (coherent) yet fails full SC on the
  // store-buffering litmus.
  WriteBuffer proto(2, 2, 1, 1, /*forwarding=*/true, /*drain_order=*/true);
  EXPECT_EQ(verify_sc(proto).verdict, McVerdict::Violation);
  EXPECT_EQ(verify_coherence(proto).verdict, McVerdict::Verified);
}

TEST(Coherence, NonForwardingBufferIsNotEvenCoherent) {
  // Missing your own buffered store is a same-block violation.
  WriteBuffer proto(2, 2, 1, 1, /*forwarding=*/false, /*drain_order=*/true);
  const McResult r = verify_coherence(proto);
  ASSERT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  // Counterexample stays within one block: ST, stale LD, Drain.
  EXPECT_LE(r.counterexample.size(), 3u);
}

TEST(Coherence, ScProtocolsAreCoherent) {
  // SC implies coherence, and the restricted witness graphs are smaller.
  MsiBus msi(2, 1, 1);
  const McResult sc = verify_sc(msi);
  const McResult coh = verify_coherence(msi);
  EXPECT_EQ(sc.verdict, McVerdict::Verified);
  EXPECT_EQ(coh.verdict, McVerdict::Verified);

  LazyCaching lazy(2, 1, 1, 1, 2);
  const McResult lc = verify_coherence(lazy);
  EXPECT_EQ(lc.verdict, McVerdict::Verified);
  // With a single block the chains coincide, so the products are equal.
  EXPECT_EQ(lc.states, verify_sc(lazy).states);
}

TEST(Coherence, MultiBlockCoherenceProductIsSmaller) {
  // With b >= 2, dropping cross-block program order shrinks the witness
  // graphs and hence the product.
  SerialMemory proto(2, 2, 1);
  const McResult sc = verify_sc(proto);
  const McResult coh = verify_coherence(proto);
  ASSERT_EQ(sc.verdict, McVerdict::Verified);
  ASSERT_EQ(coh.verdict, McVerdict::Verified);
  EXPECT_LT(coh.states, sc.states);
}

TEST(Coherence, SerialMemoryCoherent) {
  SerialMemory proto(2, 2, 2);
  EXPECT_EQ(verify_coherence(proto).verdict, McVerdict::Verified);
}

// ----------------------------------------------------- drain-order option

TEST(DrainOrder, SbViolationStillFoundUnderDeferredSerialization) {
  WriteBuffer proto(2, 2, 1, 1, true, true);
  const McResult r = verify_sc(proto);
  ASSERT_EQ(r.verdict, McVerdict::Violation);
  // The cycle closes only when the forced edges are emitted at the drains,
  // so the counterexample includes them.
  bool has_drain = false;
  for (const auto& step : r.counterexample) {
    has_drain = has_drain || step.action.find("Drain") != std::string::npos;
  }
  EXPECT_TRUE(has_drain);
}

TEST(DrainOrder, RealTimeAndDrainOrderAgreeOnVerdicts) {
  for (const bool fwd : {false, true}) {
    WriteBuffer rt(2, 2, 1, 1, fwd, false);
    WriteBuffer dr(2, 2, 1, 1, fwd, true);
    EXPECT_EQ(verify_sc(rt).verdict, verify_sc(dr).verdict) << fwd;
  }
}

TEST(DrainOrder, ReportsDeferredGeneratorFlag) {
  WriteBuffer rt(2, 1, 1, 1, true, false);
  WriteBuffer dr(2, 1, 1, 1, true, true);
  EXPECT_TRUE(rt.real_time_st_order());
  EXPECT_FALSE(dr.real_time_st_order());
}

// ------------------------------------------------- checker-level checks

TEST(CoherencePo, CrossBlockPoEdgeRejected) {
  ScCheckerConfig cfg{8, 2, 2, 1, /*coherence_po=*/true};
  ScChecker c(cfg);
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), ScChecker::Status::Ok);
  ASSERT_EQ(c.feed(NodeDesc{2, make_store(0, 1, 1)}), ScChecker::Status::Ok);
  // Same processor, different blocks: not a chain edge in coherence mode.
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoPo}), ScChecker::Status::Reject);
  EXPECT_NE(c.reject_reason().find("chain"), std::string::npos);
}

TEST(CoherencePo, SameBlockChainAccepted) {
  ScCheckerConfig cfg{8, 2, 2, 1, true};
  ScChecker c(cfg);
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), ScChecker::Status::Ok);
  // An interleaved op on another block opens its own chain with no edge
  // owed between them.
  ASSERT_EQ(c.feed(NodeDesc{2, make_store(0, 1, 1)}), ScChecker::Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), ScChecker::Status::Reject)
      << "cross-block STo must still be rejected";
}

TEST(CoherencePo, ObserverEmitsPerChainEdges) {
  SerialMemory proto(1, 2, 1);
  ObserverConfig cfg;
  cfg.coherence_only = true;
  Observer obs(proto, cfg);
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Symbol> symbols;
  const auto drive = [&](BlockId b) {
    Transition st;
    st.action = store_action(0, b, 1);
    st.loc = b;
    proto.apply(state, st);
    ASSERT_EQ(obs.step(st, state, symbols), ObserverStatus::Ok);
  };
  drive(0);
  drive(1);  // different block: no po edge between the two stores
  drive(0);  // same block as the first: po edge to it
  std::size_t po_edges = 0;
  for (const Symbol& s : symbols) {
    if (const auto* e = std::get_if<EdgeDesc>(&s)) {
      po_edges += (e->anno & kAnnoPo) ? 1 : 0;
    }
  }
  EXPECT_EQ(po_edges, 1u);
}

// ------------------------------------------------------ the TSO headline

TEST(Tso, WriteBufferVerifiesUnderTsoButViolatesSc) {
  // The point of the model axis: the machine the paper's write buffer
  // actually implements.  Relaxing ST→LD order and threading the
  // per-processor store chain turns the SC counterexample into a verified
  // protocol — the buffer is a correct TSO implementation.
  WriteBuffer proto(1, 1, 1, 1, /*forwarding=*/false);
  EXPECT_EQ(verify_sc(proto).verdict, McVerdict::Violation);
  const McResult tso = verify_model(proto, MemoryModel::tso());
  EXPECT_EQ(tso.verdict, McVerdict::Verified) << tso.summary();

  WriteBuffer two(2, 1, 1, 1, /*forwarding=*/false);
  EXPECT_EQ(verify_sc(two).verdict, McVerdict::Violation);
  EXPECT_EQ(verify_model(two, MemoryModel::tso()).verdict,
            McVerdict::Verified);
}

TEST(Tso, ForwardingBufferStillViolatesTso) {
  // Our TSO is the non-forwarding buffer: a forwarded load returns its own
  // processor's buffered store early, and the inheritance edge pins that
  // store before the load in the witness order, so the store-buffering
  // cycle (two blocks, both processors forward-reading their own store and
  // cross-reading the initial value) survives the ST→LD relaxation.
  WriteBuffer fwd(2, 2, 1, 1, /*forwarding=*/true);
  const McResult r = verify_model(fwd, MemoryModel::tso());
  EXPECT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  // With one block there is nothing to buffer past: forwarding reads are
  // the freshest value and the machine is TSO-correct.
  WriteBuffer one(2, 1, 1, 1, /*forwarding=*/true);
  EXPECT_EQ(verify_model(one, MemoryModel::tso()).verdict,
            McVerdict::Verified);
}

TEST(Tso, StoreChainWidensTheDefaultPool) {
  // R3/R4 and the observer must agree on the pool a TSO run uses: the
  // store chain keeps one extra tail per processor alive.
  const WriteBuffer proto(2, 2, 2, 1, false);
  const std::size_t sc_pool = Observer::default_pool_size(proto);
  const std::size_t tso_pool =
      Observer::default_pool_size(proto, MemoryModel::tso());
  EXPECT_EQ(tso_pool, sc_pool + proto.params().procs);
  EXPECT_EQ(Observer::default_pool_size(proto, MemoryModel{}), sc_pool);
}

// ------------------------------------------------ registry × model matrix

TEST(Tso, RegistryVerdictsMatchTheRecordedMatrix) {
  // Differential check of every bundled protocol against the registry's
  // per-model violation flags.  Expected violations run uncapped — BFS
  // stops at the first counterexample (worst cell: write_buffer_fwd under
  // tso at ~705k states).  Expected-clean runs get a state cap instead: a
  // clean verdict within the cap is Verified or StateLimit, and finding a
  // counterexample anywhere would flip the verdict to Violation.
  constexpr std::size_t kCleanCap = 150'000;
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    for (const NamedModel& nm : memory_model_axis()) {
      if (entry.violating_under(nm.model)) {
        const McResult r = verify_model(*proto, nm.model);
        EXPECT_EQ(r.verdict, McVerdict::Violation)
            << entry.id << " under " << nm.name << ": " << r.summary();
      } else {
        const McResult r = verify_model(*proto, nm.model, kCleanCap);
        EXPECT_TRUE(r.verdict == McVerdict::Verified ||
                    r.verdict == McVerdict::StateLimit)
            << entry.id << " under " << nm.name << ": " << r.summary();
        EXPECT_TRUE(r.counterexample.empty()) << entry.id;
      }
    }
  }
}

TEST(Tso, ScVerifiedImpliesRelaxedVerifiedOnSmallInstances) {
  // For a fixed witness, every model only removes po edges relative to SC,
  // so SC-verified implies verified under tso and coherence.  Exhaustible
  // instances let us check the implication with full verdicts.
  const SerialMemory serial(2, 1, 1);
  const MsiBus msi(2, 1, 1);
  const LazyCaching lazy(2, 1, 1, 1, 2);
  for (const Protocol* proto :
       {static_cast<const Protocol*>(&serial),
        static_cast<const Protocol*>(&msi),
        static_cast<const Protocol*>(&lazy)}) {
    ASSERT_EQ(verify_sc(*proto).verdict, McVerdict::Verified)
        << proto->name();
    for (const NamedModel& nm : memory_model_axis()) {
      EXPECT_EQ(verify_model(*proto, nm.model).verdict, McVerdict::Verified)
          << proto->name() << " under " << nm.name;
    }
  }
}

// ----------------------------------------------------- bounded preemption

TEST(Preemption, BoundsExplorationWithoutChangingTheVerdict) {
  // Depth-limited exploration with a zero preemption budget walks only the
  // non-preemptive interleavings: strictly fewer states, same verdict.
  const SerialMemory proto(2, 2, 2);
  McOptions full;
  full.max_depth = 8;
  full.threads = 1;
  const McResult f = verify_sc(proto, full);
  McOptions bounded = full;
  bounded.observer.model = MemoryModel::bounded_sc(0);
  const McResult b = verify_sc(proto, bounded);
  EXPECT_EQ(b.verdict, f.verdict);
  EXPECT_LT(b.states, f.states);
  EXPECT_GT(b.preemption_pruned, 0u);
}

TEST(Preemption, ViolationsStillFoundWithinTheBudget) {
  // The write buffer's SC counterexample needs only one context switch, so
  // a budget of one still finds it (under-approximation stays useful).
  WriteBuffer proto(2, 1, 1, 1, false);
  const McResult r = verify_model(proto, MemoryModel::bounded_sc(1));
  EXPECT_EQ(r.verdict, McVerdict::Violation) << r.summary();
}

}  // namespace
}  // namespace scv
