// Differential tests for processor-symmetry orbit canonicalization
// (DESIGN.md §12): reduction on vs. off must agree on every verdict, shrink
// the stored state count on genuinely symmetric protocols, preserve
// counterexample minimality and offline re-checkability, and fall back —
// loudly but soundly — when a protocol's declared symmetry is a lie.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "mc/model_checker.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"
#include "runlog/replay.hpp"
#include "runlog/run_trace.hpp"

namespace scv {
namespace {

McOptions with_symmetry(bool on) {
  McOptions opt;
  opt.symmetry_reduction = on;
  return opt;
}

// ----------------------------------------------- verdict parity (registry)

// Every bundled protocol, explored with and without reduction under the
// same budget, must reach the same verdict.  The 80k cap is chosen above
// the largest unreduced violation discovery (write_buffer_fwd_drain finds
// its violation at ~62k stored states) so no symmetric pair straddles the
// budget with different verdicts.
TEST(Symmetry, VerdictParityAcrossRegistry) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    McOptions on = with_symmetry(true);
    on.max_states = 80'000;
    McOptions off = with_symmetry(false);
    off.max_states = 80'000;
    const McResult ron = model_check(*proto, on);
    const McResult roff = model_check(*proto, off);
    EXPECT_EQ(ron.verdict, roff.verdict)
        << entry.id << ": on=" << ron.summary() << " off=" << roff.summary();
    EXPECT_TRUE(ron.symmetry_note.empty())
        << entry.id << ": unexpected fallback — " << ron.symmetry_note;
    // The reduced exploration never stores more states than the full one.
    if (ron.verdict != McVerdict::StateLimit) {
      EXPECT_LE(ron.states, roff.states) << entry.id;
    }
    if (proto->processor_symmetric() && proto->params().procs >= 2) {
      EXPECT_TRUE(ron.symmetry_active) << entry.id;
      EXPECT_GT(ron.orbit_reduction, 1.0) << entry.id;
      EXPECT_FALSE(roff.symmetry_active) << entry.id;
      EXPECT_DOUBLE_EQ(roff.orbit_reduction, 1.0) << entry.id;
    } else {
      EXPECT_FALSE(ron.symmetry_active) << entry.id;
      EXPECT_EQ(ron.states, roff.states) << entry.id;
    }
  }
}

// --------------------------------------------------- reduction magnitude

TEST(Symmetry, MsiBusP2HalvesTheStateSpace) {
  MsiBus proto(2, 1, 1);
  const McResult on = model_check(proto, with_symmetry(true));
  const McResult off = model_check(proto, with_symmetry(false));
  ASSERT_EQ(on.verdict, McVerdict::Verified) << on.summary();
  ASSERT_EQ(off.verdict, McVerdict::Verified) << off.summary();
  // With p = 2 almost every product state has a trivial stabilizer, so the
  // quotient is within a whisker of half the full space.
  EXPECT_LT(on.states, off.states);
  EXPECT_GE(static_cast<double>(off.states) / on.states, 1.8);
  EXPECT_GT(on.orbit_reduction, 1.9);
}

TEST(Symmetry, MsiBusP3DepthBoundedReduction) {
  // The p = 3 product does not terminate at test-friendly sizes, but the
  // BFS is level-synchronized, so equal depth bounds mean equal concrete
  // coverage — a like-for-like comparison of stored states.
  MsiBus proto(3, 1, 1);
  McOptions on = with_symmetry(true);
  on.max_depth = 8;
  on.max_states = 1'000'000;
  McOptions off = with_symmetry(false);
  off.max_depth = 8;
  off.max_states = 1'000'000;
  const McResult ron = model_check(proto, on);
  const McResult roff = model_check(proto, off);
  ASSERT_EQ(ron.verdict, roff.verdict);
  EXPECT_GE(static_cast<double>(roff.states) / ron.states, 3.0)
      << "on=" << ron.states << " off=" << roff.states;
  EXPECT_GT(ron.orbit_reduction, 4.0);  // |S_3| = 6; most orbits are full
}

TEST(Symmetry, SerialMemoryP3FullVerification) {
  SerialMemory proto(3, 1, 1);
  const McResult on = model_check(proto, with_symmetry(true));
  const McResult off = model_check(proto, with_symmetry(false));
  ASSERT_EQ(on.verdict, McVerdict::Verified);
  ASSERT_EQ(off.verdict, McVerdict::Verified);
  EXPECT_LT(on.states, off.states);
  EXPECT_GT(on.orbit_reduction, 4.0);
}

// ------------------------------------------- violations under reduction

// Violating symmetric protocols: both modes find a violation, at the same
// BFS depth (level synchrony preserves depth minimality on the quotient),
// and both recorded counterexamples re-check offline.
TEST(Symmetry, ViolationParityAndOfflineRecheck) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    if (!entry.sc_violating) continue;
    const auto proto = entry.make();
    McOptions on = with_symmetry(true);
    on.max_states = 100'000;
    on.record_counterexample = true;
    McOptions off = with_symmetry(false);
    off.max_states = 100'000;
    off.record_counterexample = true;
    const McResult ron = model_check(*proto, on);
    const McResult roff = model_check(*proto, off);
    ASSERT_EQ(ron.verdict, McVerdict::Violation) << entry.id;
    ASSERT_EQ(roff.verdict, McVerdict::Violation) << entry.id;
    EXPECT_EQ(ron.counterexample.size(), roff.counterexample.size())
        << entry.id << ": depth minimality lost under reduction";
    for (const McResult* r : {&ron, &roff}) {
      ASSERT_TRUE(r->counterexample_trace.has_value()) << entry.id;
      const TraceCheckResult chk = check_trace(*r->counterexample_trace);
      EXPECT_TRUE(chk.ok) << entry.id << ": " << chk.error;
      EXPECT_TRUE(chk.matches_recorded(r->counterexample_trace->verdict))
          << entry.id << ": recorded under symmetry_active="
          << r->symmetry_active << ", reject='" << chk.reject_reason << "'";
    }
  }
}

TEST(Symmetry, MultiThreadRecordingIsByteIdentical) {
  WriteBuffer proto(2, 2, 2, 2, true);
  McOptions base = with_symmetry(true);
  base.record_counterexample = true;
  McOptions par = base;
  par.threads = 4;
  const McResult seq = model_check(proto, base);
  const McResult mt = model_check(proto, par);
  ASSERT_EQ(seq.verdict, McVerdict::Violation);
  ASSERT_EQ(mt.verdict, McVerdict::Violation);
  ASSERT_TRUE(seq.counterexample_trace.has_value());
  ASSERT_TRUE(mt.counterexample_trace.has_value());
  ByteWriter ws;
  ByteWriter wp;
  serialize_run_trace(*seq.counterexample_trace, ws);
  serialize_run_trace(*mt.counterexample_trace, wp);
  const auto a = ws.data();
  const auto b = wp.data();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

// ------------------------------------------------ self-check and fallback

// A protocol that *claims* processor symmetry while its permute hooks do
// nothing (Protocol's benign no-op defaults): transitions get renamed but
// the state does not, which breaks commutation.  Wraps MsiBus by
// composition (it is final) and deliberately does NOT forward the permute
// hooks — the declared symmetry is a lie the checks must catch.
class FalselySymmetricMsi final : public Protocol {
 public:
  FalselySymmetricMsi() : inner_(2, 1, 1) {}
  [[nodiscard]] std::string name() const override {
    return "FalselySymmetricMsi";
  }
  [[nodiscard]] const Params& params() const override {
    return inner_.params();
  }
  [[nodiscard]] std::size_t state_size() const override {
    return inner_.state_size();
  }
  void initial_state(std::span<std::uint8_t> state) const override {
    inner_.initial_state(state);
  }
  void enumerate(std::span<const std::uint8_t> state,
                 std::vector<Transition>& out) const override {
    inner_.enumerate(state, out);
  }
  void apply(std::span<std::uint8_t> state,
             const Transition& t) const override {
    inner_.apply(state, t);
  }
  [[nodiscard]] bool could_load_bottom(std::span<const std::uint8_t> state,
                                       BlockId b) const override {
    return inner_.could_load_bottom(state, b);
  }
  [[nodiscard]] std::string action_name(const Action& a) const override {
    return inner_.action_name(a);
  }
  [[nodiscard]] bool processor_symmetric() const override { return true; }

 private:
  MsiBus inner_;
};

TEST(Symmetry, SelfCheckRejectsFalseDeclaration) {
  const FalselySymmetricMsi proto;
  const SymmetryCheckResult res = check_processor_symmetry(proto);
  EXPECT_TRUE(res.declared);
  EXPECT_TRUE(res.applicable);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.detail.empty());
}

TEST(Symmetry, ModelCheckerFallsBackOnFalseDeclaration) {
  const FalselySymmetricMsi proto;
  const McResult r = model_check(proto, with_symmetry(true));
  EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
  EXPECT_FALSE(r.symmetry_active);
  EXPECT_FALSE(r.symmetry_note.empty());
  // The fallback explores the full space — same count as an honest MsiBus
  // without reduction.
  const McResult full = model_check(MsiBus(2, 1, 1), with_symmetry(false));
  EXPECT_EQ(r.states, full.states);
}

TEST(Symmetry, LintR6WarnsOnFalseDeclaration) {
  const FalselySymmetricMsi proto;
  const LintReport report = lint_protocol(proto);
  EXPECT_GE(report.count(LintRule::R6_ProcessorSymmetry), 1u)
      << report.format();
  bool warned = false;
  for (const LintFinding& f : report.findings) {
    warned |= f.rule == LintRule::R6_ProcessorSymmetry &&
              f.severity == LintSeverity::Warning;
  }
  EXPECT_TRUE(warned) << report.format();
}

TEST(Symmetry, CommutationCheckCleanOnBundledProtocols) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const SymmetryCheckResult res = check_processor_symmetry(*proto);
    EXPECT_EQ(res.declared, proto->processor_symmetric()) << entry.id;
    if (res.applicable) {
      EXPECT_TRUE(res.ok) << entry.id << ": " << res.detail;
      EXPECT_GT(res.states_checked, 0u) << entry.id;
    }
  }
}

// --------------------------------------------------------- phase timing

TEST(Symmetry, PhaseTimesCoverExploration) {
  MsiBus proto(2, 1, 1);
  const McResult r = model_check(proto, with_symmetry(true));
  ASSERT_EQ(r.verdict, McVerdict::Verified);
  const double phases = r.phase_times.expand + r.phase_times.canonicalize +
                        r.phase_times.materialize;
  EXPECT_GT(r.phase_times.expand, 0.0);
  EXPECT_GT(r.phase_times.canonicalize, 0.0);
  EXPECT_GT(r.phase_times.materialize, 0.0);
  // Single-threaded: the phases partition the expansion loop, so their sum
  // cannot exceed the total wall clock.
  EXPECT_LE(phases, r.seconds);
}

}  // namespace
}  // namespace scv
