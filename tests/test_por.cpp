// Differential tests for ample-set partial-order reduction (DESIGN.md §14):
// exploring with POR must preserve every verdict the full expansion reaches
// — same verdicts across the registry, byte-identical recorded
// counterexamples on the violating protocols, and a reduced reachable set
// that is a genuine subset of the full one — while the machine checks
// (lint rule R7, the engine's pre-run commutation walk) must catch a
// protocol that lies about independence and force the run back to full
// expansion.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/lint.hpp"
#include "mc/model_checker.hpp"
#include "mc/por.hpp"
#include "mc/product.hpp"
#include "protocol/directory.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "runlog/run_trace.hpp"
#include "util/byte_io.hpp"

namespace scv {
namespace {

McOptions with_por(bool on) {
  McOptions opt;
  opt.max_states = 80'000;
  opt.partial_order_reduction = on;
  return opt;
}

// ------------------------------------------------------- whole-run parity

// POR on vs off across the registry: the verdict must be identical, and the
// reduced run can only ever store fewer states (ample sets prune successors,
// they never invent them).  Protocols that do not opt in (por_enabled()
// false) must run identically with the option on.
TEST(Por, VerdictParityAcrossRegistry) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const McResult on = model_check(*proto, with_por(true));
    const McResult off = model_check(*proto, with_por(false));
    EXPECT_EQ(on.verdict, off.verdict)
        << entry.id << ": on=" << on.summary() << " off=" << off.summary();
    EXPECT_LE(on.states, off.states) << entry.id;
    EXPECT_EQ(on.symmetry_active, off.symmetry_active) << entry.id;
    EXPECT_FALSE(off.por_active) << entry.id;
    if (!proto->por_enabled()) {
      EXPECT_FALSE(on.por_active) << entry.id;
      EXPECT_EQ(on.states, off.states) << entry.id;
      EXPECT_EQ(on.transitions, off.transitions) << entry.id;
      EXPECT_EQ(on.depth, off.depth) << entry.id;
    }
  }
}

// Counterexample parity on the violating protocols.  None of the planted
// bugs opts into POR (a protocol with a lost invalidation is exactly where
// you do not want pruned interleavings), so the POR-on run must be
// observationally identical down to the recorded trace bytes.
TEST(Por, CounterexampleByteParityOnViolatingProtocols) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    if (!entry.sc_violating) continue;
    const auto proto = entry.make();
    McOptions on = with_por(true);
    on.max_states = 100'000;
    on.record_counterexample = true;
    McOptions off = on;
    off.partial_order_reduction = false;
    const McResult ron = model_check(*proto, on);
    const McResult roff = model_check(*proto, off);
    ASSERT_EQ(ron.verdict, McVerdict::Violation) << entry.id;
    ASSERT_EQ(roff.verdict, McVerdict::Violation) << entry.id;
    EXPECT_EQ(ron.counterexample.size(), roff.counterexample.size())
        << entry.id;
    ASSERT_TRUE(ron.counterexample_trace.has_value()) << entry.id;
    ASSERT_TRUE(roff.counterexample_trace.has_value()) << entry.id;
    ByteWriter wa;
    ByteWriter wb;
    serialize_run_trace(*ron.counterexample_trace, wa);
    serialize_run_trace(*roff.counterexample_trace, wb);
    EXPECT_EQ(wa.data(), wb.data())
        << entry.id << ": recorded counterexamples not byte-identical";
  }
}

// ---------------------------------------------------- reachability subset

// Depth-bounded BFS over the raw product, once expanding every enabled
// transition and once expanding only AmpleSelector's choice (no cycle
// proviso — irrelevant for the subset property, every reduced edge is a
// full-graph edge).  The reduced reachable set must be contained in the
// full one at the same depth bound, and the selector must actually have
// pruned something, or the test is vacuous.
void reachable_keys(const Protocol& proto, bool reduced, std::size_t max_depth,
                    std::unordered_set<std::string>* out,
                    std::size_t* ample_hits) {
  const ObserverConfig ocfg;
  Product cur(proto, ocfg, /*with_observer=*/true);
  Product succ(proto, ocfg, /*with_observer=*/true);
  ProcCanonicalizer canon(proto, /*enable=*/false, /*incremental=*/false);
  AmpleSelector ample(proto, reduced);
  KeyScratch ks;

  ByteWriter snap;
  cur.snapshot(snap);
  std::vector<std::vector<std::uint8_t>> frontier{snap.data()};
  canon.canonicalize_key(cur, ks, nullptr);
  out->insert(std::string(ks.w.data().begin(), ks.w.data().end()));

  std::vector<Transition> ts;
  std::vector<std::uint32_t> idx;
  std::vector<Symbol> syms;
  for (std::size_t depth = 0; depth < max_depth && !frontier.empty();
       ++depth) {
    std::vector<std::vector<std::uint8_t>> next;
    for (const std::vector<std::uint8_t>& bytes : frontier) {
      ByteReader r{std::span<const std::uint8_t>(bytes)};
      cur.restore(r);
      ts.clear();
      cur.enumerate(ts);
      const bool use_ample = reduced && ample.select(cur, ts, idx);
      if (use_ample) ++*ample_hits;
      const std::size_t n = use_ample ? idx.size() : ts.size();
      for (std::size_t i = 0; i < n; ++i) {
        succ.assign_from(cur);
        if (succ.step(ts[use_ample ? idx[i] : i], syms) != StepOutcome::Ok) {
          continue;
        }
        canon.canonicalize_key(succ, ks, nullptr);
        std::string key(ks.w.data().begin(), ks.w.data().end());
        if (out->insert(std::move(key)).second) {
          ByteWriter w;
          succ.snapshot(w);
          next.push_back(w.data());
        }
      }
    }
    frontier = std::move(next);
  }
}

TEST(Por, ReducedReachableSetIsSubsetOfFull) {
  const DirectoryProtocol proto(2, 1, 2);
  std::unordered_set<std::string> full;
  std::unordered_set<std::string> reduced;
  std::size_t ample_hits_full = 0;
  std::size_t ample_hits = 0;
  reachable_keys(proto, /*reduced=*/false, /*max_depth=*/8, &full,
                 &ample_hits_full);
  reachable_keys(proto, /*reduced=*/true, /*max_depth=*/8, &reduced,
                 &ample_hits);
  EXPECT_GT(ample_hits, 0u) << "selector never chose an ample set";
  EXPECT_LT(reduced.size(), full.size());
  for (const std::string& key : reduced) {
    ASSERT_TRUE(full.contains(key))
        << "reduced exploration reached a state full exploration cannot";
  }
}

// ------------------------------------------------- determinism and stats

// Ample selection, the cycle proviso and the level-freshness bookkeeping
// must be deterministic across worker counts: a level-synchronized barrier
// plus the post-level single-threaded proviso resolution make thread count
// an implementation detail, not an exploration parameter.  (CI runs this
// under TSan.)
TEST(Por, ThreadCountParityOnDirectory) {
  const DirectoryProtocol proto(2, 1, 2);
  McOptions base;
  base.max_depth = 12;
  std::vector<McResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    McOptions opt = base;
    opt.threads = threads;
    results.push_back(model_check(proto, opt));
  }
  const McResult& a = results[0];
  const McResult& b = results[1];
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_TRUE(a.por_active);
  EXPECT_TRUE(b.por_active);
  EXPECT_EQ(a.por_ample_states, b.por_ample_states);
  EXPECT_EQ(a.por_full_states, b.por_full_states);
  EXPECT_EQ(a.por_proviso_fallbacks, b.por_proviso_fallbacks);
  EXPECT_EQ(a.por_deferred_transitions, b.por_deferred_transitions);
}

TEST(Por, StatsAccountForEveryExpandedState) {
  const DirectoryProtocol proto(3, 1, 1);
  McOptions opt;
  opt.max_depth = 12;
  const McResult on = model_check(proto, opt);
  McOptions off = opt;
  off.partial_order_reduction = false;
  const McResult roff = model_check(proto, off);
  EXPECT_TRUE(on.por_active) << on.por_note;
  EXPECT_TRUE(on.por_note.empty()) << on.por_note;
  EXPECT_GT(on.por_ample_states, 0u);
  EXPECT_GT(on.por_deferred_transitions, 0u);
  EXPECT_LT(on.states, roff.states)
      << "POR pruned nothing on the directory protocol";
  // The POR-off run must not report any reduction accounting.
  EXPECT_EQ(roff.por_ample_states + roff.por_full_states +
                roff.por_proviso_fallbacks + roff.por_deferred_transitions,
            0u);
}

// The per-worker dup cache serves both store modes (the exact-mode path
// revalidates its cached shard/slot against the store bytes), and its
// hit-rate counters surface through McResult.
TEST(Por, DupCacheCountersInBothStoreModes) {
  for (const bool exact : {false, true}) {
    MsiBus proto(2, 1, 1);
    McOptions opt;
    opt.exact_states = exact;
    const McResult r = model_check(proto, opt);
    EXPECT_EQ(r.verdict, McVerdict::Verified) << r.summary();
    EXPECT_GT(r.dup_cache_lookups, 0u) << "exact=" << exact;
    EXPECT_GT(r.dup_cache_hits, 0u) << "exact=" << exact;
    EXPECT_LE(r.dup_cache_hits, r.dup_cache_lookups) << "exact=" << exact;
  }
}

// --------------------------------------------- false declarations (R7)

/// Wraps the directory protocol (it is final) and declares *everything*
/// independent — the bluntest possible lie.  Footprints stay honest, so
/// the ample machinery would happily select sets whose soundness rests on
/// the lie; R7 and the engine's pre-run walk must both refuse it.
class BlanketIndependenceMutant : public Protocol {
 public:
  BlanketIndependenceMutant() : inner_(2, 1, 2) {}
  [[nodiscard]] std::string name() const override {
    return "BlanketIndependenceMutant";
  }
  [[nodiscard]] const Params& params() const override {
    return inner_.params();
  }
  [[nodiscard]] std::size_t state_size() const override {
    return inner_.state_size();
  }
  void initial_state(std::span<std::uint8_t> state) const override {
    inner_.initial_state(state);
  }
  void enumerate(std::span<const std::uint8_t> state,
                 std::vector<Transition>& out) const override {
    inner_.enumerate(state, out);
  }
  void apply(std::span<std::uint8_t> state,
             const Transition& t) const override {
    inner_.apply(state, t);
  }
  [[nodiscard]] bool could_load_bottom(std::span<const std::uint8_t> state,
                                       BlockId b) const override {
    return inner_.could_load_bottom(state, b);
  }
  [[nodiscard]] std::string action_name(const Action& a) const override {
    return inner_.action_name(a);
  }
  [[nodiscard]] bool por_enabled() const override { return true; }
  [[nodiscard]] PorFootprint por_footprint(const Transition& t) const override {
    return inner_.por_footprint(t);
  }
  [[nodiscard]] bool independent(const Transition& /*t*/,
                                 const Transition& /*u*/) const override {
    return true;
  }

 protected:
  DirectoryProtocol inner_;
};

/// A targeted lie on top of the honest relation: two directory-service
/// steps for the same block are claimed independent.  Serving one request
/// marks the block busy and *disables* the other — the non-disabling half
/// of the independence contract is what breaks, not state commutation.
class HomeServiceIndependenceMutant final : public BlanketIndependenceMutant {
 public:
  [[nodiscard]] std::string name() const override {
    return "HomeServiceIndependenceMutant";
  }
  [[nodiscard]] bool independent(const Transition& t,
                                 const Transition& u) const override {
    const auto is_home = [](const Action& a) {
      return !a.is_memory_op() && (a.internal_id == DirectoryProtocol::kHomeS ||
                                   a.internal_id == DirectoryProtocol::kHomeX);
    };
    if (is_home(t.action) && is_home(u.action)) return true;
    return inner_.independent(t, u);
  }
};

TEST(Por, IndependenceCheckRejectsBlanketLie) {
  const BlanketIndependenceMutant proto;
  const IndependenceCheckResult res = check_independence(proto);
  EXPECT_TRUE(res.declared);
  EXPECT_TRUE(res.applicable);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.detail.empty());
  EXPECT_GT(res.pairs_checked, 0u);
}

TEST(Por, IndependenceCheckRejectsDisablingPair) {
  const HomeServiceIndependenceMutant proto;
  const IndependenceCheckResult res = check_independence(proto);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.detail.find("disables"), std::string::npos) << res.detail;
}

TEST(Por, IndependenceCheckCleanOnBundledProtocols) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const IndependenceCheckResult res = check_independence(*proto);
    EXPECT_EQ(res.declared, proto->por_enabled()) << entry.id;
    if (res.applicable) {
      EXPECT_TRUE(res.ok) << entry.id << ": " << res.detail;
      EXPECT_GT(res.states_checked, 0u) << entry.id;
    }
  }
}

TEST(Por, LintR7WarnsOnFalseDeclaration) {
  const BlanketIndependenceMutant proto;
  const LintReport report = lint_protocol(proto);
  EXPECT_GE(report.count(LintRule::R7_Independence), 1u) << report.format();
  bool warned = false;
  for (const LintFinding& f : report.findings) {
    warned |= f.rule == LintRule::R7_Independence &&
              f.severity == LintSeverity::Warning;
  }
  EXPECT_TRUE(warned) << report.format();
}

TEST(Por, ModelCheckerVetoesFalseDeclaration) {
  const BlanketIndependenceMutant proto;
  McOptions on;
  on.max_depth = 10;
  // The mutant's lint report carries the R7 warning, not an error, so the
  // lint_first precheck lets the run proceed — which is the point: the
  // engine's own self-check must catch the lie.
  const McResult r = model_check(proto, on);
  EXPECT_FALSE(r.por_active);
  EXPECT_FALSE(r.por_note.empty());
  McOptions off = on;
  off.partial_order_reduction = false;
  const McResult full = model_check(proto, off);
  EXPECT_EQ(r.verdict, full.verdict);
  EXPECT_EQ(r.states, full.states);
  EXPECT_EQ(r.transitions, full.transitions);
}

}  // namespace
}  // namespace scv
