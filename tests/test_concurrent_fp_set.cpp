// Differential and race tests for ConcurrentFingerprintSet, the CAS-based
// visited store behind the parallel model checker.  The threaded tests are
// the ones the TSan preset (cmake --preset tsan) exists for: they hammer
// the claim/publish protocol from many threads at once.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/concurrent_fp_set.hpp"
#include "util/fingerprint.hpp"

namespace scv {
namespace {

/// Deterministic pseudo-random 128-bit fingerprints (splitmix-style).
Fingerprint nth_fp(std::uint64_t n) {
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  Fingerprint fp{mix(n), mix(n ^ 0x5851f42d4c957f2dull)};
  if (fp.is_zero()) fp.lo = 1;
  return fp;
}

TEST(ConcurrentFpSet, SingleThreadedBasics) {
  ConcurrentFingerprintSet set;
  using Insert = ConcurrentFingerprintSet::Insert;
  EXPECT_EQ(set.insert(Fingerprint{1, 2}), Insert::Fresh);
  EXPECT_EQ(set.insert(Fingerprint{1, 2}), Insert::Duplicate);
  // Same hi lane, different lo lane: must be told apart.
  EXPECT_EQ(set.insert(Fingerprint{3, 2}), Insert::Fresh);
  EXPECT_EQ(set.insert(Fingerprint{3, 2}), Insert::Duplicate);
  EXPECT_TRUE(set.contains(Fingerprint{1, 2}));
  EXPECT_TRUE(set.contains(Fingerprint{3, 2}));
  EXPECT_FALSE(set.contains(Fingerprint{9, 9}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ConcurrentFpSet, ZeroLanesAreNormalizedConsistently) {
  ConcurrentFingerprintSet set;
  using Insert = ConcurrentFingerprintSet::Insert;
  // A zero lane would collide with the empty/pending sentinels; the table
  // remaps it to 1, so {0,x} and {1,x} intentionally coincide.
  EXPECT_EQ(set.insert(Fingerprint{5, 0}), Insert::Fresh);
  EXPECT_EQ(set.insert(Fingerprint{5, 0}), Insert::Duplicate);
  EXPECT_TRUE(set.contains(Fingerprint{5, 0}));
  EXPECT_EQ(set.insert(Fingerprint{0, 7}), Insert::Fresh);
  EXPECT_EQ(set.insert(Fingerprint{0, 7}), Insert::Duplicate);
}

TEST(ConcurrentFpSet, TableFullThenGrowPreservesMembership) {
  ConcurrentFingerprintSet set(0);  // minimum capacity
  using Insert = ConcurrentFingerprintSet::Insert;
  // The occupancy bound is per shard (7/8 of the shard), so the global
  // trip point depends on how the fingerprints spread; drive inserts until
  // the first shard trips.  Every pre-trip insert must be Fresh, and the
  // trip must land well past half the table (shard balance sanity check —
  // a broken selector that pins everything to one shard trips at ~1/16).
  std::vector<Fingerprint> inserted;
  Fingerprint tripped{};
  for (std::uint64_t n = 0;; ++n) {
    const Fingerprint fp = nth_fp(n);
    const Insert r = set.insert(fp);
    if (r == Insert::TableFull) {
      tripped = fp;
      break;
    }
    ASSERT_EQ(r, Insert::Fresh) << n;
    inserted.push_back(fp);
    ASSERT_LT(inserted.size(), set.capacity());
  }
  EXPECT_EQ(set.size(), inserted.size());
  EXPECT_GT(inserted.size(), set.capacity() / 2);

  const std::size_t old_cap = set.capacity();
  set.grow();
  EXPECT_GT(set.capacity(), old_cap);
  for (const Fingerprint fp : inserted) {
    EXPECT_TRUE(set.contains(fp));
    EXPECT_EQ(set.insert(fp), Insert::Duplicate);
  }
  // The insert the full shard rejected succeeds after the grow.
  EXPECT_EQ(set.insert(tripped), Insert::Fresh);
}

// The tentpole differential test: N threads hammer a shared key space where
// every key is contended by several threads; a mutex-guarded
// std::unordered_set oracle checks the final membership, and per-key atomic
// claim counters check the linearizability contract the model checker
// depends on — each key reports Fresh to EXACTLY one thread.
TEST(ConcurrentFpSet, ThreadedDifferentialAgainstOracle) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kKeys = 20'000;
  using Insert = ConcurrentFingerprintSet::Insert;

  ConcurrentFingerprintSet set(kKeys);
  std::vector<std::atomic<std::uint32_t>> claims(kKeys);
  std::mutex oracle_mu;
  std::unordered_set<std::uint64_t> oracle;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the whole key space in a different order, so
      // every key races between all threads.
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t k = (i * (2 * t + 1) + t * 7919) % kKeys;
        const Insert r = set.insert(nth_fp(k));
        ASSERT_NE(r, Insert::TableFull);
        if (r == Insert::Fresh) {
          claims[k].fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(oracle_mu);
          oracle.insert(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(oracle.size(), kKeys);
  EXPECT_EQ(set.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(claims[k].load(), 1u) << "key " << k
                                    << " claimed Fresh by != 1 thread";
    EXPECT_TRUE(set.contains(nth_fp(k)));
  }
}

// Concurrent inserts racing on the SAME hi lane with different lo lanes
// exercise the publish-spin path (a reader can observe a claimed slot
// whose lo lane is not yet published).
TEST(ConcurrentFpSet, ThreadedSharedHiLane) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kLos = 4'000;
  using Insert = ConcurrentFingerprintSet::Insert;

  ConcurrentFingerprintSet set(kLos);
  std::atomic<std::uint64_t> fresh{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kLos; ++i) {
        const std::uint64_t lo = (i * (2 * t + 1) + t) % kLos;
        const Insert r = set.insert(Fingerprint{lo + 1, 0x1234abcdu});
        ASSERT_NE(r, Insert::TableFull);
        if (r == Insert::Fresh) fresh.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fresh.load(), kLos);
  EXPECT_EQ(set.size(), kLos);
}

// The quiescence contract in action — concurrent inserts, a join barrier,
// then concurrent contains() from many threads.  Under TSan (cmake --preset
// tsan) this validates that the claim/publish protocol plus the join give
// readers a proper happens-before edge (no data race on the slot lanes or
// the debug writers-in-flight counters), and that membership is exact at
// the barrier.  Reads racing *into* the insert phase would instead trip
// the debug quiescence assertion.
TEST(ConcurrentFpSet, InsertBarrierContainsIsRaceFree) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kKeys = 16'000;
  using Insert = ConcurrentFingerprintSet::Insert;

  ConcurrentFingerprintSet set(kKeys);
  {
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (std::uint64_t i = t; i < kKeys; i += kThreads) {
          ASSERT_NE(set.insert(nth_fp(i)), Insert::TableFull);
        }
      });
    }
    for (auto& th : writers) th.join();
  }

  std::atomic<std::uint64_t> present{0};
  std::atomic<std::uint64_t> absent{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (std::uint64_t i = t; i < kKeys; i += kThreads) {
        if (set.contains(nth_fp(i))) {
          present.fetch_add(1, std::memory_order_relaxed);
        }
        if (!set.contains(nth_fp(kKeys + i))) {
          absent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(present.load(), kKeys);
  EXPECT_EQ(absent.load(), kKeys);
  EXPECT_EQ(set.size(), kKeys);
}

}  // namespace
}  // namespace scv
