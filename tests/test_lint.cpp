// The static protocol analyzer (src/analysis/): a clean pass over every
// bundled protocol, and deliberately broken mutants of msi_bus /
// lazy_caching each triggering exactly the finding its seeded defect
// deserves (ISSUE rules R1–R5).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>

#include "analysis/lint.hpp"
#include "core/verifier.hpp"
#include "descriptor/symbol.hpp"
#include "protocol/get_shared_toy.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "protocol/serial_memory.hpp"

namespace scv {
namespace {

/// Decorator protocol for seeding metadata defects: forwards everything to
/// the wrapped protocol, then lets the test rewrite the enumerated
/// transitions (and, when the rewrite invents actions, handle them in
/// apply), or present altered Params.
class MutantProtocol final : public Protocol {
 public:
  using Rewrite = std::function<void(std::vector<Transition>&)>;
  /// Returns true when it consumed the transition (a mutant-invented one).
  using ApplyHook = std::function<bool(std::span<std::uint8_t>,
                                       const Transition&)>;

  MutantProtocol(std::unique_ptr<Protocol> inner, Rewrite rewrite,
                 std::optional<Params> params = std::nullopt,
                 ApplyHook apply_hook = nullptr)
      : inner_(std::move(inner)),
        rewrite_(std::move(rewrite)),
        params_(params.value_or(inner_->params())),
        apply_hook_(std::move(apply_hook)) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "Mutant";
  }
  [[nodiscard]] const Params& params() const override { return params_; }
  [[nodiscard]] std::size_t state_size() const override {
    return inner_->state_size();
  }
  void initial_state(std::span<std::uint8_t> state) const override {
    inner_->initial_state(state);
  }
  void enumerate(std::span<const std::uint8_t> state,
                 std::vector<Transition>& out) const override {
    inner_->enumerate(state, out);
    if (rewrite_) rewrite_(out);
  }
  void apply(std::span<std::uint8_t> state,
             const Transition& t) const override {
    if (apply_hook_ && apply_hook_(state, t)) return;
    inner_->apply(state, t);
  }
  [[nodiscard]] bool real_time_st_order() const override {
    return inner_->real_time_st_order();
  }
  [[nodiscard]] bool could_load_bottom(std::span<const std::uint8_t> state,
                                       BlockId b) const override {
    return inner_->could_load_bottom(state, b);
  }
  [[nodiscard]] std::string action_name(const Action& a) const override {
    return inner_->action_name(a);
  }

 private:
  std::unique_ptr<Protocol> inner_;
  Rewrite rewrite_;
  Params params_;
  ApplyHook apply_hook_;
};

bool has_finding(const LintReport& r, LintRule rule, LintSeverity severity,
                 const std::string& needle) {
  for (const LintFinding& f : r.findings) {
    if (f.rule == rule && f.severity == severity &&
        f.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Every error in the report belongs to `rule` — the mutant triggered
/// exactly the rule its defect deserves, not collateral noise.
bool errors_only_from(const LintReport& r, LintRule rule) {
  for (const LintFinding& f : r.findings) {
    if (f.severity == LintSeverity::Error && f.rule != rule) return false;
  }
  return r.has_errors();
}

TEST(Lint, CleanPassOverAllBundledProtocols) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const LintReport report = lint_protocol(*proto);
    EXPECT_FALSE(report.has_errors()) << entry.id << "\n" << report.format();
    EXPECT_EQ(report.count(LintSeverity::Warning), 0u)
        << entry.id << "\n"
        << report.format();
    EXPECT_GT(report.stats.transitions_checked, 0u) << entry.id;
    EXPECT_GT(report.stats.prefixes_walked, 0u) << entry.id;
  }
}

TEST(Lint, MissingTrackingLabelIsR1) {
  // First ST transition loses its label to an out-of-range location.
  MutantProtocol mutant(std::make_unique<MsiBus>(2, 2, 2),
                        [](std::vector<Transition>& out) {
                          for (Transition& t : out) {
                            if (t.action.kind == Action::Kind::Store) {
                              t.loc = 200;
                              break;
                            }
                          }
                        });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Error, "tracking label"))
      << report.format();
  EXPECT_TRUE(errors_only_from(report, LintRule::R1_TrackingLabels))
      << report.format();
}

TEST(Lint, DanglingCopySourceIsR1) {
  MutantProtocol mutant(std::make_unique<MsiBus>(2, 2, 2),
                        [](std::vector<Transition>& out) {
                          for (Transition& t : out) {
                            if (!t.copies.empty()) {
                              t.copies[0].src = 99;
                              break;
                            }
                          }
                        });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Error, "dangling copy source"))
      << report.format();
  EXPECT_TRUE(errors_only_from(report, LintRule::R1_TrackingLabels))
      << report.format();
}

TEST(Lint, ClearSrcAsDestinationIsR1) {
  MutantProtocol mutant(std::make_unique<MsiBus>(2, 2, 2),
                        [](std::vector<Transition>& out) {
                          for (Transition& t : out) {
                            if (!t.copies.empty()) {
                              t.copies[0].dst = kClearSrc;
                              break;
                            }
                          }
                        });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Error, "kClearSrc"))
      << report.format();
}

TEST(Lint, DoubleWrittenLocationIsR1) {
  MutantProtocol mutant(
      std::make_unique<LazyCaching>(2, 2, 2, 1, 1),
      [](std::vector<Transition>& out) {
        for (Transition& t : out) {
          if (t.copies.size() >= 2 && !t.copies.full()) {
            t.copies.push_back(CopyEntry{t.copies[0].dst, t.copies[1].src});
            break;
          }
        }
      });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Error, "written twice"))
      << report.format();
}

TEST(Lint, LocationCountAboveMaxIsR1) {
  Protocol::Params params{2, 2, 2, /*locations=*/300};
  MutantProtocol mutant(std::make_unique<SerialMemory>(2, 2, 2), nullptr,
                        params);
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Error, "kMaxLocations"))
      << report.format();
}

TEST(Lint, DeadLocationIsR2) {
  // A LazyCaching mutant declaring one extra location that no transition
  // ever touches: dead tracking state inflating the hashed key.
  auto inner = std::make_unique<LazyCaching>(2, 2, 2, 1, 1);
  Protocol::Params params = inner->params();
  params.locations += 1;
  MutantProtocol mutant(std::move(inner), nullptr, params);
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R2_LocationLiveness,
                          LintSeverity::Warning, "never referenced"))
      << report.format();
  EXPECT_FALSE(report.has_errors()) << report.format();
  EXPECT_EQ(report.count(LintRule::R2_LocationLiveness), 1u)
      << report.format();
}

TEST(Lint, UndersizedPoolIsR3) {
  SerialMemory proto(2, 2, 2);
  LintOptions opt;
  opt.observer.pool_size = 2;
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(has_finding(report, LintRule::R3_Bandwidth,
                          LintSeverity::Warning, "below the static"))
      << report.format();
}

TEST(Lint, UnrepresentableBandwidthIsR3) {
  SerialMemory proto(2, 2, 2);
  LintOptions opt;
  opt.observer.pool_size = kMaxBandwidth + 8;
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(has_finding(report, LintRule::R3_Bandwidth, LintSeverity::Error,
                          "kMaxBandwidth"))
      << report.format();
  EXPECT_TRUE(errors_only_from(report, LintRule::R3_Bandwidth))
      << report.format();
}

TEST(Lint, CapacityFailureNamesConfiguredBandwidth) {
  // Regression: the R4 differential walk's capacity finding must name the
  // configured descriptor bandwidth k (pool, plus the mirrored locations
  // when location_mirrored), not just that "a" pool ran dry.
  SerialMemory proto(2, 2, 2);
  LintOptions opt;
  opt.observer.pool_size = 2;
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(has_finding(report, LintRule::R3_Bandwidth,
                          LintSeverity::Warning, "k=2 (ID pool 2)"))
      << report.format();
  LintOptions mirrored = opt;
  mirrored.observer.location_mirrored = true;
  const LintReport mreport = lint_protocol(proto, mirrored);
  const std::string mk =
      "k=" + std::to_string(proto.params().locations + 2) + " (ID pool 2)";
  EXPECT_TRUE(has_finding(mreport, LintRule::R3_Bandwidth,
                          LintSeverity::Warning, mk))
      << mreport.format();
}

TEST(Lint, RuleSelectionSkipsUnselectedPasses) {
  MsiBus proto(2, 2, 2);
  LintOptions opt;
  opt.rules = lint_rule_bit(LintRule::R2_LocationLiveness) |
              lint_rule_bit(LintRule::R7_Independence);
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(report.stats.rule(LintRule::R2_LocationLiveness).ran);
  EXPECT_TRUE(report.stats.rule(LintRule::R7_Independence).ran);
  EXPECT_FALSE(report.stats.rule(LintRule::R1_TrackingLabels).ran);
  EXPECT_FALSE(report.stats.rule(LintRule::R3_Bandwidth).ran);
  EXPECT_FALSE(report.stats.rule(LintRule::R4_ObserverInterference).ran);
  for (const LintFinding& f : report.findings) {
    EXPECT_TRUE(f.rule == LintRule::R2_LocationLiveness ||
                f.rule == LintRule::R7_Independence)
        << to_string(f.rule);
  }
}

TEST(Lint, ExhaustiveModeGivesDefiniteVerdicts) {
  MsiBus proto(2, 2, 2);
  const LintReport report = lint_protocol(proto);  // defaults: exhaustive
  EXPECT_TRUE(report.stats.exhaustive);
  EXPECT_FALSE(report.stats.truncated);
  for (const LintRule r :
       {LintRule::R2_LocationLiveness, LintRule::R5_DeadTransitions,
        LintRule::R7_Independence}) {
    EXPECT_TRUE(report.stats.rule(r).ran) << to_string(r);
    EXPECT_TRUE(report.stats.rule(r).definite) << to_string(r);
  }
  // The walk/sample rules stay evidence even in exhaustive mode.
  EXPECT_FALSE(report.stats.rule(LintRule::R4_ObserverInterference).definite);
  LintOptions sampled;
  sampled.mode = LintOptions::Mode::Sampled;
  const LintReport sreport = lint_protocol(proto, sampled);
  EXPECT_FALSE(sreport.stats.exhaustive);
}

TEST(Lint, DeprecatedSamplingKnobsDrawNoteInExhaustiveMode) {
  MsiBus proto(2, 2, 2);
  LintOptions opt;
  opt.max_states = 512;  // legacy sampling cap, ignored by exhaustive mode
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(has_finding(report, LintRule::R1_TrackingLabels,
                          LintSeverity::Note, "deprecated"))
      << report.format();
  // The skeleton must NOT have been capped at the legacy knob.
  EXPECT_GT(report.stats.states_sampled, 512u);
}

/// R4 stub: claims to observe but scribbles on the protocol state.
class ScribblingStub final : public Augmentation {
 public:
  [[nodiscard]] std::string name() const override { return "ScribblingStub"; }
  [[nodiscard]] bool step(const Transition&,
                          std::span<std::uint8_t> post_state) override {
    if (++steps_ % 5 == 0 && !post_state.empty()) post_state[0] ^= 1;
    return true;
  }
  [[nodiscard]] std::string error() const override { return {}; }

 private:
  std::size_t steps_ = 0;
};

/// R4 stub: vetoes a perfectly legal run.
class VetoingStub final : public Augmentation {
 public:
  [[nodiscard]] std::string name() const override { return "VetoingStub"; }
  [[nodiscard]] bool step(const Transition&,
                          std::span<std::uint8_t>) override {
    return ++steps_ < 4;
  }
  [[nodiscard]] std::string error() const override {
    return "synthetic veto";
  }

 private:
  std::size_t steps_ = 0;
};

TEST(Lint, StateMutatingAugmentationIsR4) {
  MsiBus proto(2, 2, 2);
  LintOptions opt;
  opt.augmentation = [](const Protocol&) {
    return std::make_unique<ScribblingStub>();
  };
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(errors_only_from(report, LintRule::R4_ObserverInterference))
      << report.format();
  // The scribble is caught as interference: either the state comparison or
  // the enabled-set comparison (on the following step) trips first.
  EXPECT_GE(report.count(LintRule::R4_ObserverInterference), 1u)
      << report.format();
}

TEST(Lint, RunVetoingAugmentationIsR4) {
  MsiBus proto(2, 2, 2);
  LintOptions opt;
  opt.augmentation = [](const Protocol&) {
    return std::make_unique<VetoingStub>();
  };
  const LintReport report = lint_protocol(proto, opt);
  EXPECT_TRUE(has_finding(report, LintRule::R4_ObserverInterference,
                          LintSeverity::Error, "rejects a legal protocol"))
      << report.format();
  EXPECT_TRUE(errors_only_from(report, LintRule::R4_ObserverInterference))
      << report.format();
}

TEST(Lint, DuplicateTransitionIsR5) {
  MutantProtocol mutant(std::make_unique<MsiBus>(2, 2, 2),
                        [](std::vector<Transition>& out) {
                          if (!out.empty()) out.push_back(out.front());
                        });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R5_DeadTransitions,
                          LintSeverity::Warning, "enumerated twice"))
      << report.format();
  EXPECT_FALSE(report.has_errors()) << report.format();
}

TEST(Lint, DeadInternalActionIsR5) {
  constexpr std::uint8_t kNopAction = 77;
  MutantProtocol mutant(
      std::make_unique<MsiBus>(2, 2, 2),
      [](std::vector<Transition>& out) {
        Transition nop;
        nop.action = internal_action(kNopAction);
        out.push_back(nop);
      },
      std::nullopt,
      [](std::span<std::uint8_t>, const Transition& t) {
        return t.action.kind == Action::Kind::Internal &&
               t.action.internal_id == kNopAction;
      });
  const LintReport report = lint_protocol(mutant);
  EXPECT_TRUE(has_finding(report, LintRule::R5_DeadTransitions,
                          LintSeverity::Warning, "dead self-loop"))
      << report.format();
}

TEST(Lint, ConstructionRejects255PlusLocations) {
  // 4 procs x 64 slots = 256 locations: location 255 would alias kClearSrc.
  EXPECT_DEATH(GetSharedToy(4, 1, 1, 64), "kMaxLocations");
}

TEST(Lint, ModelCheckerPrechecksByDefault) {
  MutantProtocol mutant(std::make_unique<MsiBus>(2, 2, 2),
                        [](std::vector<Transition>& out) {
                          for (Transition& t : out) {
                            if (t.action.kind == Action::Kind::Store) {
                              t.loc = 200;
                              break;
                            }
                          }
                        });
  McOptions opt;
  opt.max_states = 10'000;
  const McResult result = model_check(mutant, opt);
  EXPECT_EQ(result.verdict, McVerdict::LintRejected);
  EXPECT_NE(result.reason.find("lint precheck failed"), std::string::npos)
      << result.reason;
  EXPECT_NE(result.reason.find("R1"), std::string::npos) << result.reason;
  EXPECT_EQ(result.states, 0u);
}

TEST(Lint, CleanProtocolUnaffectedByPrecheck) {
  SerialMemory proto(2, 1, 2);
  McOptions with_lint;
  McOptions without_lint;
  without_lint.lint_first = false;
  const McResult a = verify_sc(proto, with_lint);
  const McResult b = verify_sc(proto, without_lint);
  EXPECT_EQ(a.verdict, McVerdict::Verified);
  EXPECT_EQ(b.verdict, McVerdict::Verified);
  EXPECT_EQ(a.states, b.states);
}

TEST(Lint, ReportFormatting) {
  MsiBus proto(2, 2, 2);
  const LintReport report = lint_protocol(proto);
  EXPECT_NE(report.summary().find("MsiBus"), std::string::npos);
  EXPECT_NE(report.summary().find("0 error(s)"), std::string::npos);
  EXPECT_NE(report.format().find("MsiBus"), std::string::npos);
  EXPECT_EQ(to_string(LintRule::R1_TrackingLabels), "R1:tracking-labels");
  EXPECT_EQ(to_string(LintSeverity::Error), "error");
}

TEST(Lint, RegistryIdsAreUniqueAndConstructible) {
  std::size_t n = 0;
  for (const RegisteredProtocol& entry : protocol_registry()) {
    ++n;
    const auto proto = make_registered_protocol(entry.id);
    ASSERT_NE(proto, nullptr) << entry.id;
    EXPECT_FALSE(proto->name().empty());
  }
  EXPECT_GE(n, 6u);  // the six bundled families, plus variants
  EXPECT_EQ(make_registered_protocol("no_such_protocol"), nullptr);
}

}  // namespace
}  // namespace scv
