// Tests for the full SC checker (Theorem 3.1): cycle detection plus all
// five edge-annotation constraint families, under the prompt-descriptor
// discipline the observer emits.
#include <gtest/gtest.h>

#include "checker/sc_checker.hpp"

namespace scv {
namespace {

using Status = ScChecker::Status;

ScChecker make_checker(std::size_t k = 8, std::size_t procs = 2,
                       std::size_t blocks = 2, std::size_t values = 2) {
  return ScChecker(ScCheckerConfig{k, procs, blocks, values});
}

Status feed_all(ScChecker& c, const std::vector<Symbol>& symbols) {
  Status st = Status::Ok;
  for (const Symbol& s : symbols) {
    st = c.feed(s);
    if (st == Status::Reject) return st;
  }
  return st;
}

// The Figure 3 stream, emitted the way the observer would (node, po edge,
// inh/STo/forced edges immediately).
std::vector<Symbol> fig3_stream() {
  return {
      NodeDesc{1, make_store(0, 0, 1)},
      NodeDesc{2, make_load(1, 0, 1)},
      EdgeDesc{1, 2, kAnnoInh},
      NodeDesc{3, make_store(0, 0, 2)},
      EdgeDesc{1, 3, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)},
      EdgeDesc{2, 3, kAnnoForced},  // last P2 load inheriting node 1
      NodeDesc{4, make_load(1, 0, 1)},
      EdgeDesc{2, 4, kAnnoPo},
      EdgeDesc{1, 4, kAnnoInh},
      EdgeDesc{4, 3, kAnnoForced},
      NodeDesc{5, make_load(1, 0, 2)},
      EdgeDesc{4, 5, kAnnoPo},
      EdgeDesc{3, 5, kAnnoInh},
  };
}

TEST(ScChecker, AcceptsFig3Stream) {
  auto c = make_checker();
  EXPECT_EQ(feed_all(c, fig3_stream()), Status::Ok) << c.reject_reason();
}

TEST(ScChecker, NodeWithoutLabelRejected) {
  auto c = make_checker();
  EXPECT_EQ(c.feed(NodeDesc{1}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("label"), std::string::npos);
}

TEST(ScChecker, LabelOutOfRangeRejected) {
  auto c = make_checker(8, /*procs=*/2, /*blocks=*/2, /*values=*/2);
  EXPECT_EQ(c.feed(NodeDesc{1, make_store(3, 0, 1)}), Status::Reject);
  auto c2 = make_checker();
  EXPECT_EQ(c2.feed(NodeDesc{1, make_store(0, 0, 3)}), Status::Reject);
}

// ------------------------------------------------------- program order

TEST(ScChecker, ProgramOrderEdgeRequiredBeforeNextOp) {
  auto c = make_checker();
  EXPECT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok);
  // Second op of P1 without the po edge for the first pair pending?  The
  // first op had no predecessor, so no edge is owed yet; the second op
  // creates the obligation.
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(0, 0, 2)}), Status::Ok);
  // A third P1 op before the (1,2) po edge violates promptness.
  EXPECT_EQ(c.feed(NodeDesc{3, make_store(0, 0, 1)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("program order"), std::string::npos);
}

TEST(ScChecker, WrongDirectionPoEdgeRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(0, 0, 2)});
  EXPECT_EQ(c.feed(EdgeDesc{2, 1, kAnnoPo}), Status::Reject);
}

TEST(ScChecker, CrossProcessorPoEdgeRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(1, 0, 2)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoPo}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("different processors"),
            std::string::npos);
}

TEST(ScChecker, PredecessorRetiredBeforeEdgeRejected) {
  auto c = make_checker(3, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  // Recycle ID 1: retires the store (it is P1's latest op — allowed when
  // it could be the last op, but a successor then has no edge source).
  // Retiring the STo root with no pending obligations is fine; the store
  // is also the only store, so constraint 3 is satisfied vacuously.
  (void)c.feed(NodeDesc{1, make_store(1, 0, 1)});
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(0, 0, 1)}), Status::Reject)
      << "new P1 op after its predecessor retired";
}

// ---------------------------------------------------------- ST order

TEST(ScChecker, DuplicateStoOutRejected) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(1, 0, 1)});
  (void)c.feed(NodeDesc{3, make_store(1, 0, 2)});
  ASSERT_EQ(c.feed(EdgeDesc{2, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{1, 3, kAnnoSto}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("ST order"), std::string::npos);
}

TEST(ScChecker, StoAcrossBlocksRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(1, 1, 1)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), Status::Reject);
}

TEST(ScChecker, StoFromLoadRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_load(0, 0, kBottom)});
  (void)c.feed(NodeDesc{2, make_store(1, 0, 1)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoSto}), Status::Reject);
}

TEST(ScChecker, TwoRetiredStoRootsRejected) {
  auto c = make_checker(2, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  // Recycle ID 1: the store retires with no STo-in — candidate first store.
  ASSERT_EQ(c.feed(NodeDesc{1, make_store(1, 0, 2)}), Status::Ok);
  // Recycle again: a second store retires with no STo-in — impossible in
  // any single total ST order.
  EXPECT_EQ(c.feed(NodeDesc{1, make_store(1, 0, 1)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("constraint 3"), std::string::npos);
}

// --------------------------------------------------------- inheritance

TEST(ScChecker, InheritanceValueMismatchRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 2)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("value"), std::string::npos);
}

TEST(ScChecker, InheritanceBlockMismatchRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 1, 1)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Reject);
}

TEST(ScChecker, InheritanceIntoBottomLoadRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, kBottom)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Reject);
}

TEST(ScChecker, DoubleInheritanceRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Reject);
}

TEST(ScChecker, LoadRetiredWithoutInheritanceRejected) {
  auto c = make_checker(2, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_load(0, 0, 1)});
  EXPECT_EQ(c.feed(NodeDesc{1, make_load(1, 0, kBottom)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("inheritance"), std::string::npos);
}

// --------------------------------------------------------- forced edges

TEST(ScChecker, PendingLoadRetiredWithoutForcedEdgeRejected) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  // The load is the last of P2 inheriting from node 1; retiring it while
  // the store is still live strands constraint 5(a).
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(0, 0, 2)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("5a"), std::string::npos);
}

TEST(ScChecker, ForcedObligationDischargedByLaterLoad) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  // A later load of the same processor inheriting the same store takes
  // over (condition (ii)); the first load may then retire.
  (void)c.feed(NodeDesc{3, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{2, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoInh}), Status::Ok);
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(0, 0, 2)}), Status::Ok)
      << c.reject_reason();
}

TEST(ScChecker, ForcedEdgeMustLandOnStoSuccessor) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  (void)c.feed(NodeDesc{3, make_store(0, 0, 2)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoSto}), Status::Ok);
  // Obligation now concrete: load 2 owes a forced edge to node 3.  The
  // correct edge discharges it.
  ASSERT_EQ(c.feed(EdgeDesc{2, 3, kAnnoForced}), Status::Ok);
  // The discharged load can now retire — both by ID reuse (a new P1
  // operation) and by the null-ID idiom.
  EXPECT_EQ(c.feed(NodeDesc{2, make_store(0, 0, 1)}), Status::Ok)
      << c.reject_reason();
  auto c2 = make_checker(8, 2, 1, 2);
  (void)c2.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c2.feed(NodeDesc{2, make_load(1, 0, 1)});
  ASSERT_EQ(c2.feed(EdgeDesc{1, 2, kAnnoInh}), Status::Ok);
  (void)c2.feed(NodeDesc{3, make_store(0, 0, 2)});
  ASSERT_EQ(c2.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c2.feed(EdgeDesc{1, 3, kAnnoSto}), Status::Ok);
  ASSERT_EQ(c2.feed(EdgeDesc{2, 3, kAnnoForced}), Status::Ok);
  EXPECT_EQ(c2.feed(AddId{9, 2}), Status::Ok) << c2.reject_reason();
}

TEST(ScChecker, DanglingAddIdRejected) {
  // add-ID whose `existing` is neither bound nor the reserved null ID
  // (k+1) is a malformed descriptor: the alias source is dangling.
  auto c = make_checker(4, 2, 1, 1);  // null ID = 5
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  EXPECT_EQ(c.feed(AddId{3, 1}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("not bound"), std::string::npos);
}

TEST(ScChecker, ForcedEdgeFromStoreRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(1, 0, 2)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoForced}), Status::Reject);
}

TEST(ScChecker, CycleThroughForcedEdgeRejected) {
  // Figure 3's cycle-prevention in action: the forced edge (4,3) plus an
  // (illegal) inheritance ordering would close a cycle.
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(0, 0, 2)});
  ASSERT_EQ(
      c.feed(EdgeDesc{1, 2, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)}),
      Status::Ok);
  (void)c.feed(NodeDesc{3, make_load(1, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoInh}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{3, 2, kAnnoForced}), Status::Ok);
  (void)c.feed(NodeDesc{4, make_load(1, 0, 2)});
  ASSERT_EQ(c.feed(EdgeDesc{3, 4, kAnnoPo}), Status::Ok);
  ASSERT_EQ(c.feed(EdgeDesc{2, 4, kAnnoInh}), Status::Ok);
  // Now a (bogus) STo edge 2 -> 1 would close 1 -> 2 -> 1; the checker
  // sees the duplicate STo-out / cycle immediately.
  EXPECT_EQ(c.feed(EdgeDesc{2, 1, kAnnoSto}), Status::Reject);
}

// ----------------------------------------------------------- ⊥ loads

TEST(ScChecker, BottomLoadForcedToFirstStoreAccepted) {
  auto c = make_checker(8, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_load(1, 0, kBottom)});
  (void)c.feed(NodeDesc{2, make_store(0, 0, 1)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, kAnnoForced}), Status::Ok)
      << c.reject_reason();
}

TEST(ScChecker, BottomLoadRetiredPendingRejected) {
  auto c = make_checker(2, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_load(1, 0, kBottom)});
  EXPECT_EQ(c.feed(NodeDesc{1, make_load(0, 0, kBottom)}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("5b"), std::string::npos);
}

TEST(ScChecker, BottomObligationDischargedByLaterBottomLoad) {
  auto c = make_checker(8, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_load(1, 0, kBottom)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, kBottom)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoPo}), Status::Ok);
  // The earlier ⊥-load may now retire; the later one carries the duty.
  EXPECT_EQ(c.feed(NodeDesc{1, make_store(0, 0, 1)}), Status::Ok)
      << c.reject_reason();
  // And the later one discharges it with the forced edge to that store.
  EXPECT_EQ(c.feed(EdgeDesc{2, 1, kAnnoForced}), Status::Ok)
      << c.reject_reason();
}

TEST(ScChecker, BottomForcedEdgeToNonRootRejected) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_store(0, 0, 2)});
  ASSERT_EQ(
      c.feed(EdgeDesc{1, 2, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)}),
      Status::Ok);
  (void)c.feed(NodeDesc{3, make_load(1, 0, kBottom)});
  // Node 2 has an incoming STo edge: it cannot be the first store.
  EXPECT_EQ(c.feed(EdgeDesc{3, 2, kAnnoForced}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("first"), std::string::npos);
}

TEST(ScChecker, TwoDifferentClaimedRootsRejected) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, kBottom)});
  ASSERT_EQ(c.feed(EdgeDesc{2, 1, kAnnoForced}), Status::Ok);
  (void)c.feed(NodeDesc{3, make_store(0, 0, 2)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 3, kAnnoPo}), Status::Ok);
  (void)c.feed(NodeDesc{4, make_load(1, 0, kBottom)});
  ASSERT_EQ(c.feed(EdgeDesc{2, 4, kAnnoPo}), Status::Ok);
  // Claiming node 3 as the first store contradicts the earlier claim of
  // node 1.
  EXPECT_EQ(c.feed(EdgeDesc{4, 3, kAnnoForced}), Status::Reject);
}

TEST(ScChecker, PinnedRootGainingPredecessorRejected) {
  auto c = make_checker(8, 2, 1, 2);
  (void)c.feed(NodeDesc{1, make_load(1, 0, kBottom)});
  (void)c.feed(NodeDesc{2, make_store(0, 0, 1)});
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoForced}), Status::Ok);
  (void)c.feed(NodeDesc{3, make_store(0, 0, 2)});
  ASSERT_EQ(c.feed(EdgeDesc{2, 3, kAnnoPo}), Status::Ok);
  // An STo edge *into* the pinned root contradicts constraint 5(b).
  EXPECT_EQ(c.feed(EdgeDesc{3, 2, kAnnoSto}), Status::Reject);
}

// ------------------------------------------------- cycles & bookkeeping

TEST(ScChecker, StoreBufferingCycleRejected) {
  // The WriteBuffer counterexample shape, as the observer emits it.
  auto c = make_checker(8, 2, 2, 1);
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});    // P1: ST B1
  (void)c.feed(NodeDesc{2, make_load(0, 1, kBottom)});  // P1: LD B2 = ⊥
  ASSERT_EQ(c.feed(EdgeDesc{1, 2, kAnnoPo}), Status::Ok);
  (void)c.feed(NodeDesc{3, make_store(1, 1, 1)});    // P2: ST B2
  ASSERT_EQ(c.feed(EdgeDesc{2, 3, kAnnoForced}), Status::Ok);  // ⊥ -> root
  (void)c.feed(NodeDesc{4, make_load(1, 0, kBottom)});  // P2: LD B1 = ⊥
  ASSERT_EQ(c.feed(EdgeDesc{3, 4, kAnnoPo}), Status::Ok);
  EXPECT_EQ(c.feed(EdgeDesc{4, 1, kAnnoForced}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("cycle"), std::string::npos);
}

TEST(ScChecker, UnannotatedEdgeRejected) {
  auto c = make_checker();
  (void)c.feed(NodeDesc{1, make_store(0, 0, 1)});
  (void)c.feed(NodeDesc{2, make_load(1, 0, 1)});
  EXPECT_EQ(c.feed(EdgeDesc{1, 2, 0}), Status::Reject);
}

TEST(ScChecker, NullIdRetirementRunsObligationChecks) {
  auto c = make_checker(4, 2, 1, 1);
  (void)c.feed(NodeDesc{1, make_load(0, 0, 1)});
  // add-ID(5,1) with ID 5 unbound unbinds ID 1: the load retires without
  // an inheritance edge -> reject.
  EXPECT_EQ(c.feed(AddId{5, 1}), Status::Reject);
  EXPECT_NE(c.reject_reason().find("inheritance"), std::string::npos);
}

TEST(ScChecker, SerializationCanonicalizesIdNaming) {
  // Two histories producing the same logical state under different IDs
  // must serialize identically through the canonical map.
  auto c1 = make_checker(8, 2, 1, 2);
  (void)c1.feed(NodeDesc{1, make_store(0, 0, 1)});
  auto c2 = make_checker(8, 2, 1, 2);
  (void)c2.feed(NodeDesc{5, make_store(0, 0, 1)});
  std::vector<GraphId> map1(10, 0), map2(10, 0);
  map1[1] = 1;
  map2[5] = 1;
  ByteWriter w1, w2;
  c1.serialize_canonical(w1, map1);
  c2.serialize_canonical(w2, map2);
  EXPECT_EQ(w1.data(), w2.data());
}

TEST(ScChecker, SnapshotRestoreRoundtrip) {
  // The model checker's compact frontier rebuilds checkers from
  // snapshot()/restore(); the pair must be bit-faithful at every prefix of
  // a stream, and a restored checker must judge further input identically.
  ScChecker a = make_checker();
  for (const Symbol& s : fig3_stream()) {
    ASSERT_EQ(a.feed(s), Status::Ok) << a.reject_reason();
    ByteWriter snap;
    a.snapshot(snap);
    ScChecker b = make_checker();
    ByteReader r(snap.data());
    b.restore(r);
    ASSERT_TRUE(r.done());
    ByteWriter resnap;
    b.snapshot(resnap);
    ASSERT_EQ(resnap.data(), snap.data());
  }
  // Behavioral parity after restore: a wrong-direction cross-processor
  // program order edge must be rejected by original and copy alike.
  ByteWriter snap;
  a.snapshot(snap);
  ScChecker b = make_checker();
  ByteReader r(snap.data());
  b.restore(r);
  const Symbol bad = EdgeDesc{5, 1, kAnnoPo};
  EXPECT_EQ(a.feed(bad), Status::Reject);
  EXPECT_EQ(b.feed(bad), Status::Reject);
  EXPECT_TRUE(b.rejected());
}

}  // namespace
}  // namespace scv
