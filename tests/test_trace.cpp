// Tests for the trace substrate: the serial-trace predicate and serial
// reorderings of Section 2.2, the brute-force SC oracle, and the trace
// generators the property suites build on.
#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/sc_oracle.hpp"
#include "trace/trace.hpp"

namespace scv {
namespace {

// ---------------------------------------------------------------- serial

TEST(SerialTrace, EmptyTraceIsSerial) { EXPECT_TRUE(is_serial_trace({})); }

TEST(SerialTrace, LoadOfBottomBeforeAnyStore) {
  EXPECT_TRUE(is_serial_trace({make_load(0, 0, kBottom)}));
  EXPECT_FALSE(is_serial_trace({make_load(0, 0, 1)}));
}

TEST(SerialTrace, LoadSeesMostRecentStore) {
  const Trace t{make_store(0, 0, 1), make_store(1, 0, 2), make_load(0, 0, 2)};
  EXPECT_TRUE(is_serial_trace(t));
  const Trace bad{make_store(0, 0, 1), make_store(1, 0, 2),
                  make_load(0, 0, 1)};
  EXPECT_FALSE(is_serial_trace(bad));
}

TEST(SerialTrace, BlocksAreIndependent) {
  const Trace t{make_store(0, 0, 1), make_load(0, 1, kBottom),
                make_store(0, 1, 2), make_load(1, 0, 1),
                make_load(1, 1, 2)};
  EXPECT_TRUE(is_serial_trace(t));
}

TEST(SerialTrace, BottomAfterStoreIsNotSerial) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, kBottom)};
  EXPECT_FALSE(is_serial_trace(t));
  EXPECT_EQ(first_serial_violation(t), 1u);
}

TEST(SerialTrace, FirstViolationIndexIsReported) {
  const Trace t{make_store(0, 0, 1), make_load(0, 0, 1), make_load(0, 0, 2),
                make_load(0, 0, 3)};
  EXPECT_EQ(first_serial_violation(t), 2u);
}

// ----------------------------------------------------------- reorderings

TEST(Reordering, IdentityPreservesProgramOrder) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 1)};
  EXPECT_TRUE(preserves_program_order(t, {0, 1}));
  EXPECT_TRUE(preserves_program_order(t, {1, 0}));  // different processors
}

TEST(Reordering, SameProcessorSwapViolatesProgramOrder) {
  const Trace t{make_store(0, 0, 1), make_load(0, 0, 1)};
  EXPECT_FALSE(preserves_program_order(t, {1, 0}));
}

TEST(Reordering, RejectsNonPermutations) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 1)};
  EXPECT_FALSE(preserves_program_order(t, {0, 0}));
  EXPECT_FALSE(preserves_program_order(t, {0}));
  EXPECT_FALSE(preserves_program_order(t, {0, 5}));
}

TEST(Reordering, ApplyReordersOperations) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 1)};
  const Trace r = apply_reordering(t, {1, 0});
  EXPECT_EQ(r[0], t[1]);
  EXPECT_EQ(r[1], t[0]);
}

TEST(Reordering, SerialReorderingOfFigureOneShape) {
  // P1: ST x=1; ST y=2.  P2: LD y=⊥; LD x=1.  Legal under SC by moving
  // P2's LD y before P1's ST y.
  const Trace t{make_store(0, 0, 1), make_store(0, 1, 2),
                make_load(1, 1, kBottom), make_load(1, 0, 1)};
  // Order: LD y(⊥), ST x, LD x(1), ST y.
  EXPECT_TRUE(is_serial_reordering(t, {2, 0, 3, 1}));
  // Trace order itself is not serial (LD y returns ⊥ after ST y).
  EXPECT_FALSE(is_serial_reordering(t, {0, 1, 2, 3}));
}

// ----------------------------------------------------------------- oracle

TEST(ScOracle, EmptyAndSingleton) {
  ScOracle oracle;
  EXPECT_TRUE(oracle.has_serial_reordering({}));
  EXPECT_TRUE(oracle.has_serial_reordering({make_store(0, 0, 1)}));
  EXPECT_TRUE(oracle.has_serial_reordering({make_load(0, 0, kBottom)}));
  EXPECT_FALSE(oracle.has_serial_reordering({make_load(0, 0, 1)}));
}

TEST(ScOracle, MessagePassingForbiddenOutcome) {
  // Figure 1's forbidden outcome r1=0, r2=2: LD x=⊥ after LD y=2.
  const Trace t{make_store(0, 0, 1), make_store(0, 1, 2), make_load(1, 1, 2),
                make_load(1, 0, kBottom)};
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(t));
}

TEST(ScOracle, MessagePassingAllowedOutcomes) {
  ScOracle oracle;
  // r1=1, r2=2.
  EXPECT_TRUE(oracle.has_serial_reordering(
      {make_store(0, 0, 1), make_store(0, 1, 2), make_load(1, 1, 2),
       make_load(1, 0, 1)}));
  // r1=0, r2=0.
  EXPECT_TRUE(oracle.has_serial_reordering(
      {make_store(0, 0, 1), make_store(0, 1, 2), make_load(1, 1, kBottom),
       make_load(1, 0, kBottom)}));
  // r1=1, r2=0.
  EXPECT_TRUE(oracle.has_serial_reordering(
      {make_store(0, 0, 1), make_store(0, 1, 2), make_load(1, 1, kBottom),
       make_load(1, 0, 1)}));
}

TEST(ScOracle, StoreBufferingIsNotSc) {
  const Trace t{make_store(0, 0, 1), make_load(0, 1, kBottom),
                make_store(1, 1, 1), make_load(1, 0, kBottom)};
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(t));
}

TEST(ScOracle, IriwIsNotSc) {
  // Independent reads of independent writes: the two readers disagree on
  // the order of the two writes — forbidden under SC.
  const Trace t{
      make_store(0, 0, 1), make_store(1, 1, 1),
      make_load(2, 0, 1),  make_load(2, 1, kBottom),
      make_load(3, 1, 1),  make_load(3, 0, kBottom),
  };
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(t));
}

TEST(ScOracle, WitnessIsAlwaysVerified) {
  Xoshiro256 rng(123);
  TraceGenParams params;
  params.processors = 3;
  params.blocks = 2;
  params.values = 2;
  params.length = 12;
  ScOracle oracle;
  for (int i = 0; i < 50; ++i) {
    const auto sc = random_sc_trace(params, rng);
    const auto witness = oracle.find_serial_reordering(sc.trace);
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(is_serial_reordering(sc.trace, *witness));
  }
}

TEST(ScOracle, CoherenceViolationDetected) {
  // Same-block: P2 observes 2 then 1 while P1 wrote 1 then 2 and observed
  // its own writes in order — no total store order can satisfy both.
  const Trace t{
      make_store(0, 0, 1), make_load(0, 0, 1), make_store(0, 0, 2),
      make_load(0, 0, 2),  make_load(1, 0, 2), make_load(1, 0, 1),
  };
  ScOracle oracle;
  EXPECT_FALSE(oracle.has_serial_reordering(t));
}

// -------------------------------------------------------------- generators

TEST(Generators, SerialTracesAreSerial) {
  Xoshiro256 rng(5);
  TraceGenParams params;
  params.length = 30;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(is_serial_trace(random_serial_trace(params, rng)));
  }
}

TEST(Generators, ScTracesCarryValidWitness) {
  Xoshiro256 rng(6);
  TraceGenParams params;
  params.processors = 4;
  params.blocks = 3;
  params.length = 25;
  for (int i = 0; i < 20; ++i) {
    const auto sc = random_sc_trace(params, rng);
    EXPECT_TRUE(is_serial_reordering(sc.trace, sc.witness));
  }
}

TEST(Generators, ShuffleCoversDistinctInterleavings) {
  const Trace t{make_store(0, 0, 1), make_store(1, 0, 1)};
  Xoshiro256 rng(7);
  std::set<Reordering> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(random_po_preserving_shuffle(t, rng));
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Generators, RandomTraceRespectsParams) {
  Xoshiro256 rng(8);
  TraceGenParams params;
  params.processors = 2;
  params.blocks = 3;
  params.values = 2;
  params.length = 100;
  const Trace t = random_trace(params, rng);
  ASSERT_EQ(t.size(), 100u);
  for (const Operation& op : t) {
    EXPECT_LT(op.proc, 2);
    EXPECT_LT(op.block, 3);
    EXPECT_LE(op.value, 2);
    if (op.is_store()) {
      EXPECT_GE(op.value, 1);
    }
  }
}

TEST(Generators, StorePercentExtremes) {
  Xoshiro256 rng(9);
  TraceGenParams params;
  params.length = 50;
  params.store_percent = 0;
  for (const Operation& op : random_trace(params, rng)) {
    EXPECT_TRUE(op.is_load());
  }
  params.store_percent = 100;
  for (const Operation& op : random_trace(params, rng)) {
    EXPECT_TRUE(op.is_store());
  }
}

TEST(TraceStrings, Rendering) {
  EXPECT_EQ(to_string(make_store(0, 1, 3)), "ST(P1,B2,3)");
  EXPECT_EQ(to_string(make_load(2, 0, kBottom)), "LD(P3,B1,_|_)");
}

}  // namespace
}  // namespace scv
