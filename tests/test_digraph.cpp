// Tests for the DiGraph substrate: cycle detection, topological order,
// reachability, and the node-bandwidth measure of Section 3.2.
#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace scv {
namespace {

DiGraph chain(std::size_t n) {
  DiGraph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(DiGraph, EmptyGraphIsAcyclic) {
  DiGraph g;
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.node_bandwidth(), 0u);
}

TEST(DiGraph, AddNodeGrows) {
  DiGraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(DiGraph, ParallelEdgesCoalesce) {
  DiGraph g(2);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DiGraph, ChainIsAcyclicWithTopoOrder) {
  const DiGraph g = chain(5);
  EXPECT_FALSE(g.has_cycle());
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(DiGraph, SelfLoopIsCycle) {
  DiGraph g(1);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.has_cycle());
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<std::uint32_t>{0}));
}

TEST(DiGraph, TwoCycleDetected) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(DiGraph, FindCycleReturnsRealCycle) {
  DiGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);  // cycle 1 -> 2 -> 3 -> 1
  g.add_edge(3, 4);
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 2u);
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(
        g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

TEST(DiGraph, Reachability) {
  const DiGraph g = chain(4);
  EXPECT_TRUE(g.reachable(0, 3));
  EXPECT_FALSE(g.reachable(3, 0));
  EXPECT_TRUE(g.reachable(2, 2));
}

TEST(DiGraph, BandwidthOfChainIsOne) {
  EXPECT_EQ(chain(10).node_bandwidth(), 1u);
}

TEST(DiGraph, BandwidthOfStarFromFirstNode) {
  // Node 0 has edges to all others: only node 0 (plus nothing else in the
  // prefix) crosses each cut, so bandwidth is 1.
  DiGraph g(6);
  for (std::uint32_t i = 1; i < 6; ++i) g.add_edge(0, i);
  EXPECT_EQ(g.node_bandwidth(), 1u);
}

TEST(DiGraph, BandwidthOfCrossingPairs) {
  // Edges (0,2) and (1,3): at the cut {0,1}, both 0 and 1 cross.
  DiGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.node_bandwidth(), 2u);
}

TEST(DiGraph, BandwidthCountsNodesNotEdges) {
  // Node 0 has many edges into the future, but it is one node.
  DiGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(0, 4);
  g.add_edge(1, 4);  // node 1 also crosses cuts 1..3
  EXPECT_EQ(g.node_bandwidth(), 2u);
}

TEST(DiGraph, BandwidthIncomingEdgesCount) {
  // Edge direction does not matter for bandwidth: (3,0) keeps node 0 live.
  DiGraph g(4);
  g.add_edge(3, 0);
  EXPECT_EQ(g.node_bandwidth(), 1u);
}

TEST(DiGraph, SameEdgesComparison) {
  DiGraph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_TRUE(a.same_edges(b));
  b.add_edge(0, 2);
  EXPECT_FALSE(a.same_edges(b));
}

TEST(DiGraph, RandomGraphCycleAgreesWithTopo) {
  Xoshiro256 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 2 + rng.below(10);
    DiGraph g(n);
    const std::size_t edges = rng.below(2 * n);
    for (std::size_t e = 0; e < edges; ++e) {
      g.add_edge(static_cast<std::uint32_t>(rng.below(n)),
                 static_cast<std::uint32_t>(rng.below(n)));
    }
    EXPECT_EQ(g.has_cycle(), g.find_cycle().has_value());
    EXPECT_EQ(g.has_cycle(), !g.topological_order().has_value());
    if (const auto order = g.topological_order()) {
      // Verify it is a valid topological order.
      std::vector<std::uint32_t> pos(n);
      for (std::uint32_t i = 0; i < n; ++i) pos[(*order)[i]] = i;
      for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t v : g.successors(u)) EXPECT_LT(pos[u], pos[v]);
      }
    }
  }
}

TEST(DiGraph, RandomDagBandwidthMonotoneUnderEdgeAddition) {
  Xoshiro256 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 3 + rng.below(8);
    DiGraph g(n);
    std::size_t last_bw = 0;
    for (int e = 0; e < 8; ++e) {
      const auto u = static_cast<std::uint32_t>(rng.below(n));
      const auto v = static_cast<std::uint32_t>(rng.below(n));
      if (u == v) continue;
      g.add_edge(std::min(u, v), std::max(u, v));
      const std::size_t bw = g.node_bandwidth();
      EXPECT_GE(bw, last_bw);
      last_bw = bw;
    }
  }
}

}  // namespace
}  // namespace scv
