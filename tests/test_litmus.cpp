// Tests for the litmus engine (Figure 1): outcome enumeration under serial
// memory, sequential consistency, and relaxed per-processor reorderings.
#include <gtest/gtest.h>

#include "litmus/litmus.hpp"
#include "trace/sc_oracle.hpp"

namespace scv {
namespace {

TEST(Figure1, SerialMemoryHasUniqueOutcome) {
  EXPECT_EQ(serial_outcome(figure1_program()), (LitmusOutcome{1, 2}));
}

TEST(Figure1, ScOutcomeSetMatchesPaper) {
  // "r1 = 0, r2 = 0 is also legal, as is r1 = 1, r2 = 0, but not
  //  r1 = 0, r2 = 2."
  const auto sc = sc_outcomes(figure1_program());
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 2}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{0, 0}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 0}));
  EXPECT_FALSE(sc.contains(LitmusOutcome{0, 2}));
  EXPECT_EQ(sc.size(), 3u);
}

TEST(Figure1, LoadLoadRelaxationAdmitsTheForbiddenOutcome) {
  // "More relaxed models permit ... the two loads to execute out-of-order,
  //  resulting in r1 = 0 and r2 = 2."
  RelaxFlags flags;
  flags.load_load = true;
  const auto relaxed = relaxed_outcomes(figure1_program(), flags);
  EXPECT_TRUE(relaxed.contains(LitmusOutcome{0, 2}));
  // Relaxation only adds outcomes.
  for (const auto& o : sc_outcomes(figure1_program())) {
    EXPECT_TRUE(relaxed.contains(o));
  }
}

TEST(Figure1, StoreStoreRelaxationAlsoAdmitsIt) {
  // Reordering P1's two stores has the same observable effect here.
  RelaxFlags flags;
  flags.store_store = true;
  EXPECT_TRUE(
      relaxed_outcomes(figure1_program(), flags).contains(LitmusOutcome{0, 2}));
}

TEST(Figure1, StoreLoadRelaxationDoesNot) {
  // TSO-style store-load reordering does not affect the MP shape: neither
  // processor has a store followed by a load to a different block.
  RelaxFlags tso;
  tso.store_load = true;
  const auto relaxed = relaxed_outcomes(figure1_program(), tso);
  EXPECT_EQ(relaxed, sc_outcomes(figure1_program()));
}

TEST(Figure1, OutcomesAgreeWithScOracle) {
  // Cross-validate the litmus engine against the trace oracle: an outcome
  // is SC iff the corresponding trace has a serial reordering.
  const LitmusProgram prog = figure1_program();
  const auto sc = sc_outcomes(prog);
  ScOracle oracle;
  for (const Value r1 : {Value{0}, Value{1}}) {
    for (const Value r2 : {Value{0}, Value{2}}) {
      const Trace trace{
          make_store(0, 0, 1),
          make_store(0, 1, 2),
          make_load(1, 1, r2),
          make_load(1, 0, r1),
      };
      EXPECT_EQ(sc.contains(LitmusOutcome{r1, r2}),
                oracle.has_serial_reordering(trace))
          << "r1=" << int(r1) << " r2=" << int(r2);
    }
  }
}

TEST(StoreBuffering, ScForbidsZeroZero) {
  const auto sc = sc_outcomes(store_buffer_program());
  EXPECT_FALSE(sc.contains(LitmusOutcome{0, 0}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 1}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{0, 1}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 0}));
}

TEST(StoreBuffering, TsoAllowsZeroZero) {
  RelaxFlags tso;
  tso.store_load = true;
  EXPECT_TRUE(relaxed_outcomes(store_buffer_program(), tso)
                  .contains(LitmusOutcome{0, 0}));
}

TEST(Relaxations, SameBlockOrderIsAlwaysPreserved) {
  // A store and load of the same block never reorder, under any flags.
  LitmusProgram prog;
  prog.name = "same-block";
  prog.registers = 1;
  prog.ops = {
      LitmusOp{0, OpKind::Store, 0, 1, -1},
      LitmusOp{0, OpKind::Load, 0, 0, 0},
  };
  RelaxFlags all;
  all.load_load = all.store_store = all.store_load = all.load_store = true;
  const auto outcomes = relaxed_outcomes(prog, all);
  EXPECT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes.contains(LitmusOutcome{1}));
}

TEST(Relaxations, NoFlagsEqualsSc) {
  EXPECT_EQ(relaxed_outcomes(figure1_program(), RelaxFlags{}),
            sc_outcomes(figure1_program()));
  EXPECT_EQ(relaxed_outcomes(store_buffer_program(), RelaxFlags{}),
            sc_outcomes(store_buffer_program()));
}

TEST(Litmus, SingleProcessorProgramHasOneScOutcome) {
  LitmusProgram prog;
  prog.name = "solo";
  prog.registers = 2;
  prog.ops = {
      LitmusOp{0, OpKind::Store, 0, 2, -1},
      LitmusOp{0, OpKind::Load, 0, 0, 0},
      LitmusOp{0, OpKind::Store, 0, 1, -1},
      LitmusOp{0, OpKind::Load, 0, 0, 1},
  };
  const auto sc = sc_outcomes(prog);
  EXPECT_EQ(sc.size(), 1u);
  EXPECT_TRUE(sc.contains(LitmusOutcome{2, 1}));
}

TEST(Litmus, OutcomeRendering) {
  EXPECT_EQ(to_string(LitmusOutcome{0, 2}), "(r1=0,r2=2)");
}

// ---------------------------------------------------- memory-model sweeps

TEST(ModelSweep, RelaxFlagsMatchTheModelRules) {
  const RelaxFlags sc = model_relax_flags(MemoryModel{});
  EXPECT_FALSE(sc.load_load || sc.store_store || sc.store_load ||
               sc.load_store || sc.same_block_store_load);

  // TSO: stores pass later loads, including the stale own-read of the
  // non-forwarding buffer; everything else stays ordered.
  const RelaxFlags tso = model_relax_flags(MemoryModel::tso());
  EXPECT_TRUE(tso.store_load);
  EXPECT_TRUE(tso.same_block_store_load);
  EXPECT_FALSE(tso.load_load || tso.store_store || tso.load_store);

  // Coherence: all cross-block pairs unordered, same-block order kept.
  const RelaxFlags coh = model_relax_flags(MemoryModel::coherence());
  EXPECT_TRUE(coh.load_load && coh.store_store && coh.store_load &&
              coh.load_store);
  EXPECT_FALSE(coh.same_block_store_load);
}

TEST(ModelSweep, ScModelReproducesScOutcomes) {
  for (const LitmusProgram& family : litmus_families()) {
    EXPECT_EQ(model_outcomes(family, MemoryModel{}), sc_outcomes(family))
        << family.name;
  }
}

TEST(ModelSweep, RelaxationOnlyAddsOutcomes) {
  for (const LitmusProgram& family : litmus_families()) {
    const auto sc = sc_outcomes(family);
    for (const NamedModel& nm : memory_model_axis()) {
      const auto got = model_outcomes(family, nm.model);
      for (const auto& o : sc) {
        EXPECT_TRUE(got.contains(o))
            << family.name << " under " << nm.name << " lost " << to_string(o);
      }
    }
  }
}

TEST(ModelSweep, TsoFlipsStoreBufferingFamiliesButNotMessagePassing) {
  const MemoryModel tso = MemoryModel::tso();
  // MP is TSO-stable: no store is followed by a load to another block.
  EXPECT_EQ(model_outcomes(figure1_program(), tso),
            sc_outcomes(figure1_program()));
  // SB and its 3-processor rotation gain the all-zeros outcome.
  EXPECT_TRUE(
      model_outcomes(store_buffer_program(), tso).contains(LitmusOutcome{0, 0}));
  EXPECT_TRUE(model_outcomes(store_buffer_3_program(), tso)
                  .contains(LitmusOutcome{0, 0, 0}));
  EXPECT_FALSE(
      sc_outcomes(store_buffer_3_program()).contains(LitmusOutcome{0, 0, 0}));
}

TEST(ModelSweep, OwnReadSeparatesTsoFromCoherence) {
  // The stale own-read is exactly the non-forwarding buffer's behaviour:
  // admitted by TSO's same-block ST→LD relaxation, forbidden by coherence
  // (which keeps every per-block order intact).
  const LitmusProgram prog = own_read_program();
  EXPECT_EQ(sc_outcomes(prog), (std::set<LitmusOutcome>{{1}}));
  const auto tso = model_outcomes(prog, MemoryModel::tso());
  EXPECT_TRUE(tso.contains(LitmusOutcome{kBottom}));
  EXPECT_TRUE(tso.contains(LitmusOutcome{1}));
  EXPECT_EQ(model_outcomes(prog, MemoryModel::coherence()), sc_outcomes(prog));
}

TEST(ModelSweep, CoherenceFlipsMessagePassing) {
  // Dropping cross-block order admits the paper's forbidden (0, 2).
  EXPECT_TRUE(model_outcomes(figure1_program(), MemoryModel::coherence())
                  .contains(LitmusOutcome{0, 2}));
}

TEST(ModelSweep, AtLeastTwoFamiliesFlipUnderTso) {
  // The acceptance bar for the model axis: TSO is observably different
  // from SC on the bundled families, not just on protocol verdicts.
  std::size_t flips = 0;
  for (const LitmusProgram& family : litmus_families()) {
    flips += model_outcomes(family, MemoryModel::tso()) != sc_outcomes(family)
                 ? 1
                 : 0;
  }
  EXPECT_GE(flips, 2u);
}

}  // namespace
}  // namespace scv
