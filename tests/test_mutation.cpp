// Mutation robustness: corrupt valid observer streams (drop a symbol,
// flip an annotation, retarget an edge, swap adjacent symbols) and check
// that the ScChecker (a) never crashes or accepts malformed structure
// silently as a matter of course, and (b) rejects the overwhelming
// majority of mutations — evidence that the annotation constraints of
// Section 3.1 are actually load-bearing, not decorative.
#include <gtest/gtest.h>

#include <memory>

#include "checker/sc_checker.hpp"
#include "mc/model_checker.hpp"
#include "observer/observer.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "protocol/serial_memory.hpp"
#include "runlog/replay.hpp"
#include "walker.hpp"

namespace scv {
namespace {

using testing::random_walk;

std::vector<Symbol> observer_stream(const Protocol& proto, std::size_t steps,
                                    std::uint64_t seed, std::size_t* k) {
  const auto walk = random_walk(proto, steps, seed);
  Observer obs(proto, {});
  *k = obs.bandwidth();
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Symbol> out;
  for (const Transition& t : walk.transitions) {
    proto.apply(state, t);
    EXPECT_EQ(obs.step(t, state, out), ObserverStatus::Ok);
  }
  return out;
}

/// Feeds a stream; returns true iff fully accepted.
bool accepted(const std::vector<Symbol>& stream, std::size_t k,
              const Protocol& proto) {
  const auto& pr = proto.params();
  ScChecker chk(ScCheckerConfig{k, pr.procs, pr.blocks, pr.values});
  for (const Symbol& s : stream) {
    if (chk.feed(s) == ScChecker::Status::Reject) return false;
  }
  return true;
}

enum class Mutation { Drop, FlipAnno, RetargetEdge, DuplicateSymbol };

std::vector<Symbol> mutate(const std::vector<Symbol>& stream, Mutation m,
                           std::size_t pos, Xoshiro256& rng, std::size_t k) {
  auto out = stream;
  switch (m) {
    case Mutation::Drop:
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    case Mutation::FlipAnno:
      if (auto* e = std::get_if<EdgeDesc>(&out[pos])) {
        const std::uint8_t annos[] = {kAnnoPo, kAnnoInh, kAnnoSto,
                                      kAnnoForced};
        std::uint8_t next = annos[rng.below(4)];
        while (next == e->anno) next = annos[rng.below(4)];
        e->anno = next;
      }
      break;
    case Mutation::RetargetEdge:
      if (auto* e = std::get_if<EdgeDesc>(&out[pos])) {
        e->to = static_cast<GraphId>(rng.between(1, k + 1));
      }
      break;
    case Mutation::DuplicateSymbol:
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), out[pos]);
      break;
  }
  return out;
}

TEST(Mutation, ValidStreamsAcceptedVerbatim) {
  SerialMemory sm(2, 2, 2);
  MsiBus msi(2, 2, 2);
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&sm, &msi}) {
    std::size_t k = 0;
    const auto stream = observer_stream(*proto, 150, 3, &k);
    EXPECT_TRUE(accepted(stream, k, *proto)) << proto->name();
  }
}

TEST(Mutation, CorruptedStreamsAreOverwhelminglyRejected) {
  MsiBus proto(2, 2, 2);
  std::size_t k = 0;
  const auto stream = observer_stream(proto, 150, 7, &k);
  ASSERT_GT(stream.size(), 50u);

  Xoshiro256 rng(99);
  std::size_t tried = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const auto m = static_cast<Mutation>(rng.below(4));
    const std::size_t pos = rng.below(stream.size());
    // Only count mutations that actually change the stream's meaning.
    const auto mutated = mutate(stream, m, pos, rng, k);
    if (mutated == stream) continue;
    ++tried;
    // Must never crash; usually must reject.
    rejected += accepted(mutated, k, proto) ? 0 : 1;
  }
  ASSERT_GT(tried, 200u);
  // Some mutations are semantically harmless (e.g. duplicating a
  // retirement add-ID, dropping a redundant forced edge target of an
  // already-discharged obligation), so demand a strong majority, not all.
  EXPECT_GT(rejected * 100, tried * 80)
      << rejected << "/" << tried << " rejected";
}

TEST(Mutation, DroppedProgramOrderEdgeAlwaysRejects) {
  SerialMemory proto(2, 1, 2);
  std::size_t k = 0;
  const auto stream = observer_stream(proto, 120, 11, &k);
  std::size_t po_positions = 0;
  // Skip the stream tail: an edge feeding a node that never retires within
  // the stream may legitimately go unchecked until retirement.
  for (std::size_t pos = 0; pos < stream.size() * 7 / 10; ++pos) {
    const auto* e = std::get_if<EdgeDesc>(&stream[pos]);
    if (e == nullptr || e->anno != kAnnoPo) continue;
    ++po_positions;
    auto mutated = stream;
    mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(pos));
    EXPECT_FALSE(accepted(mutated, k, proto))
        << "dropping po edge at " << pos << " went unnoticed";
  }
  EXPECT_GT(po_positions, 10u);
}

TEST(Mutation, DroppedInheritanceEdgeAlwaysRejects) {
  SerialMemory proto(2, 1, 2);
  std::size_t k = 0;
  const auto stream = observer_stream(proto, 120, 13, &k);
  std::size_t inh_positions = 0;
  for (std::size_t pos = 0; pos < stream.size() * 7 / 10; ++pos) {
    const auto* e = std::get_if<EdgeDesc>(&stream[pos]);
    if (e == nullptr || e->anno != kAnnoInh) continue;
    ++inh_positions;
    auto mutated = stream;
    mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(pos));
    EXPECT_FALSE(accepted(mutated, k, proto))
        << "dropping inh edge at " << pos << " went unnoticed";
  }
  EXPECT_GT(inh_positions, 5u);
}

TEST(Mutation, RelabeledNodeOperationRejectsOrBreaksValueMatch) {
  // Changing a store's value makes subsequent inheritance edges lie.
  SerialMemory proto(2, 1, 2);
  std::size_t k = 0;
  const auto stream = observer_stream(proto, 120, 17, &k);
  std::size_t flipped = 0, caught = 0;
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    const auto* n = std::get_if<NodeDesc>(&stream[pos]);
    if (n == nullptr || !n->label || !n->label->is_store()) continue;
    auto mutated = stream;
    auto& nd = std::get<NodeDesc>(mutated[pos]);
    nd.label->value = nd.label->value == 1 ? 2 : 1;
    ++flipped;
    caught += accepted(mutated, k, proto) ? 0 : 1;
  }
  ASSERT_GT(flipped, 10u);
  // A flipped store value is detectable exactly when some load inherited
  // from that store (constraint 4's value matching); uninherited stores
  // denote a valid constraint graph of a *different* trace, which the
  // checker rightly accepts.  Demand that the detectable cases exist in
  // bulk and are caught.
  EXPECT_GT(caught, 10u) << caught << "/" << flipped;
}

// Counterexample parity on the buggy (mutation) protocols: the sequential
// and parallel engines must report the *same* shortest-depth counterexample
// on every registered sc-violating protocol, and the run traces both export
// must replay to the recorded verdict through the offline checker.  This is
// the end-to-end version of the stream-mutation tests above: a planted
// protocol bug is caught identically no matter which engine runs.
TEST(Mutation, SeqAndParCounterexamplesAgreeOnBuggyProtocols) {
  std::size_t violating = 0;
  for (const RegisteredProtocol& entry : protocol_registry()) {
    if (!entry.sc_violating) continue;
    ++violating;
    const std::unique_ptr<Protocol> proto = entry.make();

    McOptions seq;
    seq.record_counterexample = true;
    McOptions par = seq;
    par.threads = 4;
    const McResult rs = model_check(*proto, seq);
    const McResult rp = model_check(*proto, par);

    ASSERT_EQ(rs.verdict, McVerdict::Violation)
        << entry.id << ": " << rs.summary();
    ASSERT_EQ(rp.verdict, McVerdict::Violation)
        << entry.id << ": " << rp.summary();
    // BFS ⇒ shortest counterexamples; parity ⇒ identical ones.
    EXPECT_EQ(rs.depth, rp.depth) << entry.id;
    EXPECT_EQ(rs.counterexample.size(), rp.counterexample.size()) << entry.id;
    EXPECT_EQ(rs.reason, rp.reason) << entry.id;

    ASSERT_TRUE(rs.counterexample_trace.has_value()) << entry.id;
    ASSERT_TRUE(rp.counterexample_trace.has_value()) << entry.id;
    EXPECT_EQ(*rs.counterexample_trace, *rp.counterexample_trace) << entry.id;

    for (const McResult* r : {&rs, &rp}) {
      const RunTrace& trace = *r->counterexample_trace;
      EXPECT_EQ(trace.verdict, RunVerdict::Violation) << entry.id;
      const TraceCheckResult chk = check_trace(trace);
      ASSERT_TRUE(chk.ok) << entry.id << ": " << chk.error;
      EXPECT_FALSE(chk.accepted) << entry.id;
      EXPECT_TRUE(chk.matches_recorded(trace.verdict)) << entry.id;
      EXPECT_EQ(chk.reject_reason, trace.reason) << entry.id;
    }
  }
  // The registry ships a family of planted-bug protocols; make sure the
  // loop actually exercised them.
  EXPECT_GE(violating, 4u);
}

}  // namespace
}  // namespace scv
