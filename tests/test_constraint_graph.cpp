// Tests for constraint graphs (Section 3.1): the edge annotation
// constraints, the Lemma 3.1 construction (serial reordering -> acyclic
// valid constraint graph) and extraction (acyclic valid graph -> serial
// reordering), and the Figure 3 worked example.
#include <gtest/gtest.h>

#include "graph/constraint_graph.hpp"
#include "trace/generators.hpp"
#include "trace/sc_oracle.hpp"

namespace scv {
namespace {

// ------------------------------------------------------------- Figure 3

TEST(Fig3, MatchesPaperEdgeByEdge) {
  const Fig3Example ex = figure3_example();
  const ConstraintGraph& g = ex.graph;
  // Paper's edges (1-based): (1,2) inh, (1,3) po-STo, (1,4) inh, (2,4) po,
  // (4,3) forced, (3,5) inh, (4,5) po.
  EXPECT_EQ(g.annotation(0, 1), kAnnoInh);
  EXPECT_EQ(g.annotation(0, 2), kAnnoPo | kAnnoSto);
  EXPECT_EQ(g.annotation(0, 3), kAnnoInh);
  EXPECT_EQ(g.annotation(1, 3), kAnnoPo);
  EXPECT_EQ(g.annotation(3, 2), kAnnoForced);
  EXPECT_EQ(g.annotation(2, 4), kAnnoInh);
  EXPECT_EQ(g.annotation(3, 4), kAnnoPo);
  EXPECT_EQ(g.digraph().edge_count(), 7u);
}

TEST(Fig3, ForcedEdgePreventsStaleReadOrdering) {
  // Without the forced edge (4,3), a topological order could place node 3
  // (ST of value 2) before node 4 (LD of value 1), breaking seriality.
  const Fig3Example ex = figure3_example();
  const Reordering perm = ex.graph.extract_serial_reordering();
  EXPECT_TRUE(is_serial_reordering(ex.trace, perm));
  // Node 4 (index 3) must precede node 3 (index 2) in any valid order.
  std::size_t pos3 = 0, pos4 = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == 2) pos3 = i;
    if (perm[i] == 3) pos4 = i;
  }
  EXPECT_LT(pos4, pos3);
}

// ------------------------------------------------- Lemma 3.1 construction

TEST(Lemma31, BuilderProducesValidAcyclicGraphOnRandomScTraces) {
  Xoshiro256 rng(21);
  TraceGenParams params;
  params.processors = 3;
  params.blocks = 2;
  params.values = 2;
  params.length = 15;
  for (int i = 0; i < 40; ++i) {
    const auto sc = random_sc_trace(params, rng);
    const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
    EXPECT_EQ(g.validate(), std::nullopt);
    EXPECT_TRUE(g.acyclic());
    // Round trip: extraction yields another serial reordering.
    EXPECT_TRUE(is_serial_reordering(sc.trace, g.extract_serial_reordering()));
  }
}

TEST(Lemma31, BottomLoadsGetForcedEdgesToFirstStore) {
  // Trace: LD(P2,B1,⊥), ST(P1,B1,1), LD(P2,B1,1).
  const Trace t{make_load(1, 0, kBottom), make_store(0, 0, 1),
                make_load(1, 0, 1)};
  const ConstraintGraph g = build_constraint_graph(t, {0, 1, 2});
  EXPECT_EQ(g.validate(), std::nullopt);
  EXPECT_TRUE(g.annotation(0, 1) & kAnnoForced);  // ⊥-load -> first store
}

TEST(Lemma31, TracesWithoutStoresNeedNoForcedEdges) {
  const Trace t{make_load(0, 0, kBottom), make_load(1, 0, kBottom)};
  const ConstraintGraph g = build_constraint_graph(t, {0, 1});
  EXPECT_EQ(g.validate(), std::nullopt);
  EXPECT_EQ(g.digraph().edge_count(), 0u);
}

// -------------------------------------------------------------- validator

ConstraintGraph fig3_without(std::uint32_t from, std::uint32_t to,
                             std::uint8_t anno) {
  const Fig3Example ex = figure3_example();
  ConstraintGraph g(ex.trace);
  for (const ConstraintGraph::Edge& e : ex.graph.edges()) {
    std::uint8_t mask = e.anno;
    if (e.from == from && e.to == to) mask &= static_cast<std::uint8_t>(~anno);
    if (mask != 0) g.add_edge(e.from, e.to, mask);
  }
  return g;
}

TEST(Validator, MissingProgramOrderEdgeRejected) {
  const auto g = fig3_without(1, 3, kAnnoPo);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("program order"), std::string::npos);
}

TEST(Validator, MissingStOrderEdgeRejected) {
  const auto g = fig3_without(0, 2, kAnnoSto);
  ASSERT_TRUE(g.validate().has_value());
}

TEST(Validator, MissingInheritanceEdgeRejected) {
  const auto g = fig3_without(2, 4, kAnnoInh);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("inheritance"), std::string::npos);
}

TEST(Validator, MissingForcedEdgeRejected) {
  const auto g = fig3_without(3, 2, kAnnoForced);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("5(a)"), std::string::npos);
}

TEST(Validator, NonConsecutiveProgramOrderEdgeRejected) {
  const Fig3Example ex = figure3_example();
  ConstraintGraph g(ex.trace);
  for (const auto& e : ex.graph.edges()) g.add_edge(e.from, e.to, e.anno);
  g.add_edge(1, 4, kAnnoPo);  // skips node 4 (index 3) in P2's order
  ASSERT_TRUE(g.validate().has_value());
}

TEST(Validator, CrossProcessorProgramOrderRejected) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 1)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo | kAnnoInh);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("different processors"), std::string::npos);
}

TEST(Validator, InheritanceValueMismatchRejected) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 2)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoInh);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("incompatible"), std::string::npos);
}

TEST(Validator, InheritanceIntoBottomLoadRejected) {
  const Trace t{make_store(0, 0, 1), make_load(1, 0, kBottom)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoInh);
  ASSERT_TRUE(g.validate().has_value());
}

TEST(Validator, TwoInheritanceEdgesRejected) {
  const Trace t{make_store(0, 0, 1), make_store(1, 0, 1),
                make_load(0, 0, 1)};
  ConstraintGraph g(t);
  g.add_edge(0, 2, kAnnoPo | kAnnoInh);
  g.add_edge(1, 2, kAnnoInh);
  g.add_edge(0, 1, kAnnoSto);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("two inheritance"), std::string::npos);
}

TEST(Validator, BranchingStOrderRejected) {
  const Trace t{make_store(0, 0, 1), make_store(0, 0, 2),
                make_store(1, 0, 3)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo | kAnnoSto);
  g.add_edge(0, 2, kAnnoSto);  // two outgoing STo edges from node 0
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("outgoing ST order"), std::string::npos);
}

TEST(Validator, StOrderAcrossBlocksRejected) {
  const Trace t{make_store(0, 0, 1), make_store(0, 1, 1)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo | kAnnoSto);
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("one block"), std::string::npos);
}

TEST(Validator, MissingBottomForcedEdgeRejected) {
  const Trace t{make_load(1, 0, kBottom), make_store(0, 0, 1)};
  ConstraintGraph g(t);
  // All structural edges present except the 5(b) forced edge.
  const auto err = g.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("5(b)"), std::string::npos);
}

TEST(Validator, BottomForcedEdgeViaLaterLoadAccepted) {
  // The earlier ⊥-load is covered by a program-order path through the
  // later ⊥-load that carries the forced edge (constraint 5(b) path form).
  const Trace t{make_load(1, 0, kBottom), make_load(1, 0, kBottom),
                make_store(0, 0, 1)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo);
  g.add_edge(1, 2, kAnnoForced);
  EXPECT_EQ(g.validate(), std::nullopt);
}

TEST(Validator, ForcedEdgeViaLaterInheritingLoadAccepted) {
  // Constraint 5(a) path form: LD1 has no direct forced edge, but the
  // later LD2 of the same processor inherits from the same store and
  // carries it.
  const Trace t{make_store(0, 0, 1), make_load(1, 0, 1), make_load(1, 0, 1),
                make_store(0, 0, 2)};
  ConstraintGraph g(t);
  g.add_edge(0, 3, kAnnoPo | kAnnoSto);
  g.add_edge(1, 2, kAnnoPo);
  g.add_edge(0, 1, kAnnoInh);
  g.add_edge(0, 2, kAnnoInh);
  g.add_edge(2, 3, kAnnoForced);
  EXPECT_EQ(g.validate(), std::nullopt);
}

// ------------------------------------------------------ cyclic SC failure

TEST(ConstraintGraph, NonScTraceYieldsCyclicGraphForAllStOrders) {
  // Store buffering: any constraint graph is cyclic (Lemma 3.1 converse).
  // Here we build the graph by hand with the only possible annotation
  // choices and observe the cycle.
  const Trace t{make_store(0, 0, 1), make_load(0, 1, kBottom),
                make_store(1, 1, 1), make_load(1, 0, kBottom)};
  ConstraintGraph g(t);
  g.add_edge(0, 1, kAnnoPo);
  g.add_edge(2, 3, kAnnoPo);
  g.add_edge(1, 2, kAnnoForced);  // ⊥-load of B2 -> first ST of B2
  g.add_edge(3, 0, kAnnoForced);  // ⊥-load of B1 -> first ST of B1
  EXPECT_EQ(g.validate(), std::nullopt);
  EXPECT_FALSE(g.acyclic());
}

TEST(AnnotationStrings, Rendering) {
  EXPECT_EQ(anno_to_string(kAnnoPo | kAnnoSto), "po-STo");
  EXPECT_EQ(anno_to_string(kAnnoInh), "inh");
  EXPECT_EQ(anno_to_string(kAnnoForced), "forced");
  EXPECT_EQ(anno_to_string(0), "(none)");
}

TEST(ConstraintGraph, BandwidthOfRandomScTracesIsBounded) {
  // Section 4's claim in miniature: constraint graphs of traces from a
  // (p,b)-parameter system have bandwidth bounded by a function of p and b,
  // not of the trace length.
  Xoshiro256 rng(31);
  TraceGenParams params;
  params.processors = 2;
  params.blocks = 2;
  params.values = 2;
  // Note: the offline Lemma 3.1 builder adds a forced edge from *every*
  // inheriting load (not just the last per processor, as the observer
  // does), so its graphs are somewhat wider; the point here is sublinear
  // growth, the observer's tight bound is asserted in test_observer.
  for (std::size_t len : {12, 24, 48, 96}) {
    params.length = len;
    std::size_t max_bw = 0;
    for (int i = 0; i < 10; ++i) {
      const auto sc = random_sc_trace(params, rng);
      const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
      max_bw = std::max(max_bw, g.node_bandwidth());
    }
    EXPECT_LE(max_bw, 8 + len / 4) << "length " << len;
  }
}

}  // namespace
}  // namespace scv

namespace scv {
namespace {

TEST(Dot, Fig3RendersAllNodesAndColors) {
  const Fig3Example ex = figure3_example();
  const std::string dot = ex.graph.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " [label"),
              std::string::npos);
  }
  EXPECT_NE(dot.find("color=red"), std::string::npos);    // forced
  EXPECT_NE(dot.find("color=blue"), std::string::npos);   // inh
  EXPECT_NE(dot.find("po-STo"), std::string::npos);
}

}  // namespace
}  // namespace scv
