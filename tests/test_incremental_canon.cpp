// Differential tests for incremental canonicalization (DESIGN.md §13): the
// dirty-mask/signature-cache/delta-re-keying fast path must be *byte
// identical* to the reference permute-and-reserialize canonicalizer — same
// canonical keys, same orbit counts, same verdicts, same recorded
// counterexamples — and the dirty-mask contract it leans on (a clear bit
// certifies the processor's signature did not change) must hold along real
// exploration walks, not just on hand-picked states.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "mc/model_checker.hpp"
#include "mc/product.hpp"
#include "protocol/registry.hpp"
#include "runlog/run_trace.hpp"
#include "util/byte_io.hpp"

namespace scv {
namespace {

/// Deterministic splitmix64 stream for reproducible random walks.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

std::vector<std::uint8_t> signature_of(const Product& p, ProcId q) {
  ByteWriter w;
  p.proc_signature(q, w);
  return w.data();
}

// One random walk over `proto`'s product: from each visited state, every
// enabled successor is canonicalized twice — incrementally (with the
// successor's real touched-processor mask) and from scratch by the
// reference path — and the keys and orbit counts must agree byte for byte.
// Along the way, every processor whose dirty bit is *clear* must have a
// signature byte-identical to the base state's (the soundness contract the
// signature cache depends on).
// Returns the number of successors compared (so callers can assert the
// walk did real work and did not dead-end immediately).
std::size_t differential_walk(const Protocol& proto, std::uint64_t seed,
                              std::size_t max_bases) {
  const ObserverConfig ocfg;
  Product cur(proto, ocfg, /*with_observer=*/true);
  Product succ_inc(proto, ocfg, /*with_observer=*/true);
  Product succ_ref(proto, ocfg, /*with_observer=*/true);

  ProcCanonicalizer canon_inc(proto, /*enable=*/true, /*incremental=*/true);
  ProcCanonicalizer canon_ref(proto, /*enable=*/true, /*incremental=*/false);
  EXPECT_EQ(canon_inc.active(), canon_ref.active());

  KeyScratch ks_inc;
  KeyScratch ks_ref;
  Rng rng{seed};
  std::vector<Transition> ts;
  std::vector<Symbol> syms;
  const std::size_t procs = proto.params().procs;
  std::size_t compared = 0;

  for (std::size_t base = 0; base < max_bases; ++base) {
    canon_inc.begin_base();
    ts.clear();
    cur.enumerate(ts);
    if (ts.empty()) break;

    std::vector<std::size_t> ok;  // indices whose step completed
    for (std::size_t i = 0; i < ts.size(); ++i) {
      succ_inc.assign_from(cur);
      if (succ_inc.step(ts[i], syms) != StepOutcome::Ok) continue;
      ok.push_back(i);
      const std::uint32_t dirty = succ_inc.touched_procs();

      // Dirty-mask contract: clear bit => signature unchanged vs the base.
      for (ProcId q = 0; q < procs; ++q) {
        if ((dirty >> q) & 1u) continue;
        EXPECT_EQ(signature_of(succ_inc, q), signature_of(cur, q))
            << proto.name() << ": base " << base << " transition " << i
            << " proc " << static_cast<int>(q)
            << ": untouched signature differs from base";
      }

      succ_ref.assign_from(cur);
      EXPECT_EQ(succ_ref.step(ts[i], syms), StepOutcome::Ok);
      const std::uint64_t orbit_inc =
          canon_inc.canonicalize_key(succ_inc, ks_inc, nullptr, dirty);
      const std::uint64_t orbit_ref = canon_ref.canonicalize_key(
          succ_ref, ks_ref, nullptr, ProcCanonicalizer::kAllDirty);
      EXPECT_EQ(orbit_inc, orbit_ref)
          << proto.name() << ": base " << base << " transition " << i;
      EXPECT_EQ(ks_inc.w.data(), ks_ref.w.data())
          << proto.name() << ": base " << base << " transition " << i
          << ": canonical keys diverge";
      ++compared;
    }
    if (ok.empty()) break;

    // Advance the walk along one completed successor (the *concrete* state,
    // not the canonical representative — dirty masks are defined against
    // whatever base the successors were stepped from).
    const std::size_t pick = ok[rng.next() % ok.size()];
    succ_inc.assign_from(cur);
    EXPECT_EQ(succ_inc.step(ts[pick], syms), StepOutcome::Ok);
    cur.assign_from(succ_inc);
  }
  return compared;
}

TEST(IncrementalCanon, DifferentialAlongRandomWalks) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    std::size_t compared = 0;
    for (std::uint64_t seed : {0x5cu, 0xc0ffeeu}) {
      compared += differential_walk(*proto, seed, /*max_bases=*/60);
    }
    // Both walks together must have exercised a real slice of the product
    // (a protocol whose walk dead-ends immediately would vacuously pass).
    EXPECT_GE(compared, 100u) << entry.id;
  }
}

// Whole-run parity: exploring with the incremental canonicalizer must be
// observationally identical to the reference path — not merely the same
// verdict, but the same state count, depth, transition count and exact
// orbit accounting (byte-identical keys dedup identically).
TEST(IncrementalCanon, ModelCheckParityAcrossRegistry) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    McOptions inc;
    inc.max_states = 80'000;
    inc.incremental_canonicalization = true;
    McOptions ref = inc;
    ref.incremental_canonicalization = false;
    const McResult rinc = model_check(*proto, inc);
    const McResult rref = model_check(*proto, ref);
    EXPECT_EQ(rinc.verdict, rref.verdict)
        << entry.id << ": inc=" << rinc.summary()
        << " ref=" << rref.summary();
    EXPECT_EQ(rinc.states, rref.states) << entry.id;
    EXPECT_EQ(rinc.transitions, rref.transitions) << entry.id;
    EXPECT_EQ(rinc.depth, rref.depth) << entry.id;
    EXPECT_EQ(rinc.symmetry_active, rref.symmetry_active) << entry.id;
    EXPECT_DOUBLE_EQ(rinc.orbit_reduction, rref.orbit_reduction) << entry.id;
  }
}

// Counterexample parity on the violating protocols: both canonicalizers
// must find a violation at the same depth and record byte-identical
// replayable traces (canonical keys drive which orbit representative the
// BFS visits, so byte-identical keys mean the same counterexample run).
TEST(IncrementalCanon, CounterexampleByteParity) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    if (!entry.sc_violating) continue;
    const auto proto = entry.make();
    McOptions inc;
    inc.max_states = 100'000;
    inc.record_counterexample = true;
    inc.incremental_canonicalization = true;
    McOptions ref = inc;
    ref.incremental_canonicalization = false;
    const McResult rinc = model_check(*proto, inc);
    const McResult rref = model_check(*proto, ref);
    ASSERT_EQ(rinc.verdict, McVerdict::Violation) << entry.id;
    ASSERT_EQ(rref.verdict, McVerdict::Violation) << entry.id;
    EXPECT_EQ(rinc.counterexample.size(), rref.counterexample.size())
        << entry.id << ": counterexample depth diverges";
    ASSERT_TRUE(rinc.counterexample_trace.has_value()) << entry.id;
    ASSERT_TRUE(rref.counterexample_trace.has_value()) << entry.id;
    ByteWriter wi;
    ByteWriter wr;
    serialize_run_trace(*rinc.counterexample_trace, wi);
    serialize_run_trace(*rref.counterexample_trace, wr);
    EXPECT_EQ(wi.data(), wr.data())
        << entry.id << ": recorded counterexamples not byte-identical";
  }
}

// ------------------------------------------------- empty-key regression
//
// A symmetric protocol with a zero-byte state (and hence empty signatures
// and an empty canonical key) drives the tie loop through candidates whose
// serialized keys are all empty.  The old implementation used
// best_.empty() as its "first candidate" sentinel, so every candidate
// looked like the first: the stabilizer hit count stayed at 1 and the
// orbit size came out as p! instead of 1.  The fix tracks the first
// iteration explicitly; this stub protocol pins the behaviour.
class EmptyStateProtocol final : public Protocol {
 public:
  EmptyStateProtocol() { params_.procs = 2; }
  [[nodiscard]] std::string name() const override { return "EmptyState"; }
  [[nodiscard]] const Params& params() const override { return params_; }
  [[nodiscard]] std::size_t state_size() const override { return 0; }
  void initial_state(std::span<std::uint8_t> /*state*/) const override {}
  void enumerate(std::span<const std::uint8_t> /*state*/,
                 std::vector<Transition>& /*out*/) const override {}
  void apply(std::span<std::uint8_t> /*state*/,
             const Transition& /*t*/) const override {}
  [[nodiscard]] bool could_load_bottom(
      std::span<const std::uint8_t> /*state*/, BlockId /*b*/) const override {
    return false;
  }
  // With no per-processor state the identity renaming is genuinely
  // equivariant, so the base class's no-op permute hooks and empty
  // signatures are *honest* here — unlike the false-declaration fixtures.
  [[nodiscard]] bool processor_symmetric() const override { return true; }

 private:
  Params params_;
};

TEST(IncrementalCanon, EmptyKeyOrbitIsExactInBothModes) {
  const EmptyStateProtocol proto;
  for (const bool incremental : {true, false}) {
    ProcCanonicalizer canon(proto, /*enable=*/true, incremental);
    ASSERT_TRUE(canon.active());
    Product prod(proto, ObserverConfig{}, /*with_observer=*/false);
    KeyScratch ks;
    ProcPerm applied;
    // The state is fixed by every permutation: stabilizer order 2!, orbit
    // size exactly 1.  (The sentinel bug reported 2.)
    EXPECT_EQ(canon.canonicalize_key(prod, ks, &applied), 1u)
        << "incremental=" << incremental;
    EXPECT_TRUE(ks.w.data().empty());
    EXPECT_TRUE(applied.is_identity());
    // Same through the all-clean fast path: an empty dirty mask against a
    // fresh epoch exercises the cached-signature branches end to end.
    canon.begin_base();
    EXPECT_EQ(canon.canonicalize_key(prod, ks, nullptr, 0), 1u);
    EXPECT_EQ(canon.canonicalize_key(prod, ks, nullptr, 0), 1u);
  }
}

}  // namespace
}  // namespace scv
