// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the library's core invariants, swept across parameter grids —
//
//   * SC verdicts for every SC protocol over (p, b, v);
//   * round-trip and checker-agreement properties of the descriptor layer
//     over bandwidths and graph sizes;
//   * oracle/generator properties over trace-shape grids;
//   * observer bandwidth accounting across protocol families.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "checker/cycle_checker.hpp"
#include "core/trace_tester.hpp"
#include "core/verifier.hpp"
#include "descriptor/descriptor.hpp"
#include "graph/constraint_graph.hpp"
#include "observer/observer.hpp"
#include "protocol/directory.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"
#include "trace/generators.hpp"
#include "trace/sc_oracle.hpp"
#include "walker.hpp"

namespace scv {
namespace {

// ------------------------------------------------ SC verdict sweep

struct VerdictCase {
  const char* family;
  std::size_t procs, blocks, values;
  McVerdict expected;
};

std::unique_ptr<Protocol> make_protocol(const VerdictCase& c) {
  const std::string f = c.family;
  if (f == "serial") {
    return std::make_unique<SerialMemory>(c.procs, c.blocks, c.values);
  }
  if (f == "msi") {
    return std::make_unique<MsiBus>(c.procs, c.blocks, c.values);
  }
  if (f == "msi-buggy") {
    return std::make_unique<MsiBus>(c.procs, c.blocks, c.values, true);
  }
  if (f == "directory") {
    return std::make_unique<DirectoryProtocol>(c.procs, c.blocks, c.values);
  }
  if (f == "lazy") {
    return std::make_unique<LazyCaching>(c.procs, c.blocks, c.values, 1, 2);
  }
  if (f == "wb") {
    return std::make_unique<WriteBuffer>(c.procs, c.blocks, c.values, 1,
                                         false);
  }
  if (f == "wb-fwd") {
    return std::make_unique<WriteBuffer>(c.procs, c.blocks, c.values, 1,
                                         true);
  }
  SCV_UNREACHABLE("unknown protocol family");
}

class VerdictSweep : public ::testing::TestWithParam<VerdictCase> {};

TEST_P(VerdictSweep, VerifierMatchesExpectedVerdict) {
  const VerdictCase& c = GetParam();
  const auto proto = make_protocol(c);
  McOptions opt;
  opt.max_states = 2'000'000;
  const McResult r = verify_sc(*proto, opt);
  EXPECT_EQ(r.verdict, c.expected)
      << proto->name() << " p" << c.procs << " b" << c.blocks << " v"
      << c.values << ": " << r.summary();
  if (c.expected == McVerdict::Violation) {
    EXPECT_FALSE(r.counterexample.empty());
    EXPECT_FALSE(r.cycle.empty()) << "violations must explain their cycle";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, VerdictSweep,
    ::testing::Values(
        VerdictCase{"serial", 1, 1, 1, McVerdict::Verified},
        VerdictCase{"serial", 1, 2, 2, McVerdict::Verified},
        VerdictCase{"serial", 2, 1, 1, McVerdict::Verified},
        VerdictCase{"serial", 2, 1, 2, McVerdict::Verified},
        VerdictCase{"serial", 2, 2, 1, McVerdict::Verified},
        VerdictCase{"serial", 3, 1, 1, McVerdict::Verified},
        VerdictCase{"msi", 1, 1, 2, McVerdict::Verified},
        VerdictCase{"msi", 2, 1, 1, McVerdict::Verified},
        VerdictCase{"msi-buggy", 2, 1, 1, McVerdict::Violation},
        VerdictCase{"msi-buggy", 2, 2, 1, McVerdict::Violation},
        VerdictCase{"directory", 2, 1, 1, McVerdict::Verified},
        VerdictCase{"directory", 1, 1, 2, McVerdict::Verified},
        VerdictCase{"lazy", 2, 1, 1, McVerdict::Verified},
        VerdictCase{"lazy", 1, 2, 2, McVerdict::Verified},
        VerdictCase{"wb", 1, 1, 1, McVerdict::Violation},
        VerdictCase{"wb", 2, 2, 1, McVerdict::Violation},
        VerdictCase{"wb-fwd", 2, 2, 1, McVerdict::Violation}),
    [](const ::testing::TestParamInfo<VerdictCase>& info) {
      std::string name = info.param.family;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_p" + std::to_string(info.param.procs) + "b" +
             std::to_string(info.param.blocks) + "v" +
             std::to_string(info.param.values);
    });

// -------------------------------------- descriptor round-trip sweep

class DescriptorSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DescriptorSweep, RoundTripAndCheckerAgreement) {
  const auto [span, nodes] = GetParam();
  Xoshiro256 rng(1000 + span * 100 + nodes);
  for (int iter = 0; iter < 20; ++iter) {
    DiGraph g(nodes);
    for (std::uint32_t u = 0; u < static_cast<std::uint32_t>(nodes); ++u) {
      for (int d = 1; d <= span; ++d) {
        const std::uint32_t v = u + d;
        if (v < static_cast<std::uint32_t>(nodes) && rng.chance(1, 2)) {
          g.add_edge(u, v);
        }
      }
    }
    const std::size_t k = std::max<std::size_t>(g.node_bandwidth(), 1);
    const Descriptor d = descriptor_for_graph(g, k);
    const auto r = expand(d);
    ASSERT_TRUE(r.graph.has_value()) << r.error;
    EXPECT_TRUE(r.graph->graph.same_edges(g));
    CycleChecker checker(k);
    for (const Symbol& s : d.symbols) {
      ASSERT_EQ(checker.feed(s), CycleChecker::Status::Ok)
          << checker.reject_reason();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpanByNodes, DescriptorSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(4, 12, 32, 64)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "span" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ oracle/trace sweep

class TraceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TraceSweep, ScTracesVerifyAndGraphsValidate) {
  const auto [procs, blocks, length] = GetParam();
  Xoshiro256 rng(2000 + procs * 100 + blocks * 10 + length);
  TraceGenParams params;
  params.processors = procs;
  params.blocks = blocks;
  params.values = 2;
  params.length = length;
  ScOracle oracle;
  for (int iter = 0; iter < 10; ++iter) {
    const auto sc = random_sc_trace(params, rng);
    EXPECT_TRUE(oracle.has_serial_reordering(sc.trace));
    const ConstraintGraph g = build_constraint_graph(sc.trace, sc.witness);
    EXPECT_EQ(g.validate(), std::nullopt);
    EXPECT_TRUE(g.acyclic());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraceSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3),
                       ::testing::Values(6, 14)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_len" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------- observer bandwidth sweep

struct BandwidthCase {
  const char* family;
  std::size_t procs, blocks;
};

class BandwidthSweep : public ::testing::TestWithParam<BandwidthCase> {};

TEST_P(BandwidthSweep, PeakNodesBoundedByPaperFormula) {
  const BandwidthCase& c = GetParam();
  std::unique_ptr<Protocol> proto;
  const std::string f = c.family;
  if (f == "serial") {
    proto = std::make_unique<SerialMemory>(c.procs, c.blocks, 2);
  } else if (f == "msi") {
    proto = std::make_unique<MsiBus>(c.procs, c.blocks, 2);
  } else {
    proto = std::make_unique<DirectoryProtocol>(c.procs, c.blocks, 2);
  }
  Observer obs(*proto, {});
  std::vector<std::uint8_t> state(proto->state_size());
  proto->initial_state(state);
  Xoshiro256 rng(9);
  std::vector<Transition> ts;
  std::vector<Symbol> sink;
  for (int step = 0; step < 800; ++step) {
    ts.clear();
    proto->enumerate(state, ts);
    const Transition t = ts[rng.below(ts.size())];
    proto->apply(state, t);
    ASSERT_EQ(obs.step(t, state, sink), ObserverStatus::Ok) << obs.error();
    sink.clear();
  }
  const auto& pr = proto->params();
  EXPECT_LE(obs.peak_live_nodes(),
            pr.locations + pr.procs * pr.blocks + pr.procs + 2 * pr.blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BandwidthSweep,
    ::testing::Values(BandwidthCase{"serial", 2, 2},
                      BandwidthCase{"serial", 4, 4},
                      BandwidthCase{"msi", 2, 2}, BandwidthCase{"msi", 3, 3},
                      BandwidthCase{"msi", 4, 2},
                      BandwidthCase{"directory", 2, 2},
                      BandwidthCase{"directory", 3, 2}),
    [](const ::testing::TestParamInfo<BandwidthCase>& info) {
      return std::string(info.param.family) + "_p" +
             std::to_string(info.param.procs) + "b" +
             std::to_string(info.param.blocks);
    });

// ----------------------------------------- trace-tester seed sweep

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, MonitorNeverFlagsScProtocols) {
  const int seed = GetParam();
  MsiBus msi(3, 2, 2);
  TraceTestOptions opt;
  opt.max_steps = 4000;
  opt.seed = static_cast<std::uint64_t>(seed);
  EXPECT_EQ(trace_test(msi, opt).verdict, TraceVerdict::Passed);
  LazyCaching lazy(2, 2, 2, 1, 3);
  EXPECT_EQ(trace_test(lazy, opt).verdict, TraceVerdict::Passed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace scv
