// Tests for the streaming verification service (src/stream/): the SPSC
// ring, packed wire events, the service's verdict/quarantine machinery,
// the differential guarantee (service verdict == offline check_trace,
// byte-identical reasons, across the whole protocol registry and worker
// counts), excerpt replayability (v3 base snapshots), the zero-allocation
// steady state, and malformed-SCVR diagnostics through both the streaming
// reader and service ingest.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "checker/sc_checker.hpp"
#include "mc/model_checker.hpp"
#include "mc/record.hpp"
#include "protocol/registry.hpp"
#include "runlog/replay.hpp"
#include "runlog/run_trace.hpp"
#include "runlog/trace_stream.hpp"
#include "stream/ingest.hpp"
#include "stream/service.hpp"
#include "stream/spsc_ring.hpp"
#include "stream/stream_event.hpp"

// ------------------------------------------------ allocation accounting
//
// Global new/delete overrides counting every heap allocation in the test
// binary.  The zero-allocation assertions read the counter around a
// steady-state window; everything else ignores it.

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scv {
namespace {

using Status = ScChecker::Status;

// ------------------------------------------------------------ SPSC ring

TEST(SpscRing, PushDrainOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring full";
  int out[8];
  ASSERT_EQ(ring.drain(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.drain(out, 8), 0u) << "ring empty";
}

TEST(SpscRing, WrapsAroundWithPartialDrains) {
  SpscRing<int> ring(4);
  int out[4];
  int next_pushed = 0;
  int next_expected = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.try_push(next_pushed)) ++next_pushed;
    const std::size_t n = ring.drain(out, (round % 3) + 1);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], next_expected++);
  }
}

TEST(SpscRing, CrossThreadSequenceIntact) {
  SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kCount = 1 << 18;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t buf[64];
  while (expected < kCount) {
    const std::size_t n = ring.drain(buf, 64);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expected) << "reordered or lost element";
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------- packed events

TEST(StreamEvent, SymbolRoundTripsAllVariants) {
  const Symbol cases[] = {
      NodeDesc{5, std::nullopt},
      NodeDesc{3, make_store(1, 0, 2)},
      NodeDesc{7, make_load(0, 1, 1)},
      EdgeDesc{2, 9, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)},
      AddId{4, 6},
  };
  for (const Symbol& sym : cases) {
    EXPECT_EQ(unpack_symbol(pack_symbol(sym)), sym);
  }
}

TEST(StreamEvent, ConfigRoundTripsAcrossModels) {
  for (const MemoryModel& m :
       {MemoryModel::sc(), MemoryModel::tso(), MemoryModel::coherence()}) {
    ScCheckerConfig cfg{8, 2, 2, 2};
    cfg.model = m;
    const ScCheckerConfig back = unpack_config(pack_config(cfg));
    EXPECT_EQ(back.k, cfg.k);
    EXPECT_EQ(back.model.kind, m.kind);
    EXPECT_TRUE(back.invalid_reason().empty());
  }
}

TEST(StreamEvent, CorruptModelKindYieldsInvalidConfig) {
  PackedConfig p = pack_config(ScCheckerConfig{8, 2, 2, 2});
  p.model_kind = 250;  // not a ModelKind
  EXPECT_FALSE(unpack_config(p).invalid_reason().empty());
}

// -------------------------------------------------------- crafted loads
//
// A hand-built descriptor load on the default 2-proc config: processor 0
// issues a serialized store per step, IDs 1/2 recycled alternately, so
// the stream runs forever in bounded state.  The violating suffix closes
// a program-order cycle, which the checker rejects deterministically.

ScCheckerConfig small_config() { return ScCheckerConfig{8, 2, 2, 2}; }

std::vector<RunStep> clean_store_chain(std::size_t steps,
                                       std::size_t start = 0) {
  std::vector<RunStep> out;
  out.reserve(steps);
  for (std::size_t j = start; j < start + steps; ++j) {
    const GraphId cur = static_cast<GraphId>(1 + (j % 2));
    const GraphId prev = static_cast<GraphId>(1 + ((j + 1) % 2));
    RunStep step;
    step.symbols.push_back(
        NodeDesc{cur, make_store(0, 0, static_cast<Value>(1 + (j % 2)))});
    if (j > 0) {
      step.symbols.push_back(EdgeDesc{
          prev, cur, static_cast<std::uint8_t>(kAnnoPo | kAnnoSto)});
    }
    out.push_back(std::move(step));
  }
  return out;
}

RunStep violating_step(std::size_t after_steps) {
  // Reversed program-order edge between the two live stores.
  const GraphId cur = static_cast<GraphId>(1 + ((after_steps - 1) % 2));
  const GraphId prev = static_cast<GraphId>(1 + (after_steps % 2));
  RunStep step;
  step.symbols.push_back(EdgeDesc{cur, prev, kAnnoPo});
  return step;
}

TEST(CraftedLoad, ChainIsCleanAndSuffixRejects) {
  ScChecker c(small_config());
  for (const RunStep& s : clean_store_chain(40)) {
    ASSERT_EQ(c.feed_batch(s.symbols), Status::Ok) << c.reject_reason();
  }
  EXPECT_EQ(c.feed_batch(violating_step(40).symbols), Status::Reject);
  EXPECT_FALSE(c.reject_reason().empty());
}

// ------------------------------------------------------ service basics

void feed_steps(StreamService::Producer p, std::uint32_t id,
                const std::vector<RunStep>& steps) {
  for (const RunStep& s : steps) {
    for (const Symbol& sym : s.symbols) p.symbol(id, sym);
    p.step_end(id);
  }
}

TEST(StreamService, CleanStreamClosesAccepted) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  feed_steps(p, 1, clean_store_chain(20));
  EXPECT_FALSE(svc.report(1).has_value()) << "no verdict before close";
  p.close(1);
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Closed);
  EXPECT_EQ(rep->verdict, RunVerdict::Accepted);
  EXPECT_EQ(rep->steps, 20u);
}

TEST(StreamService, InvalidConfigQuarantinesOnOpen) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  ScCheckerConfig bad = small_config();
  bad.k = 0;
  p.open(1, bad);
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Quarantined);
  EXPECT_EQ(rep->verdict, RunVerdict::TrackingInconsistent);
  EXPECT_NE(rep->reason.find("invalid checker config"), std::string::npos);
}

TEST(StreamService, ReopenBeforeCloseQuarantines) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  p.open(1, small_config());
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Quarantined);
  EXPECT_NE(rep->reason.find("reopened"), std::string::npos);
}

TEST(StreamService, UnknownStreamEventsDiscarded) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  p.symbol(7, NodeDesc{1, make_store(0, 0, 1)});
  p.step_end(7);
  svc.stop();
  EXPECT_EQ(svc.stats().discarded_events, 2u);
  EXPECT_FALSE(svc.report(7).has_value());
}

TEST(StreamService, QuarantinedStreamDoesNotStopSiblings) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  p.open(2, small_config());
  feed_steps(p, 1, clean_store_chain(10));
  feed_steps(p, 2, clean_store_chain(10));
  feed_steps(p, 1, {violating_step(10)});
  while (svc.poll() != 0) {
  }
  // Stream 1's verdict is already published while stream 2 is still live.
  const auto rep1 = svc.report(1);
  ASSERT_TRUE(rep1.has_value());
  EXPECT_EQ(rep1->state, StreamState::Quarantined);
  EXPECT_FALSE(svc.report(2).has_value());
  // Events for the quarantined stream are discarded, not applied.
  feed_steps(p, 1, clean_store_chain(3));
  // Stream 2 keeps verifying to a clean close (its chain continues where
  // it left off — step 10 owes the po edge from step 9's node).
  feed_steps(p, 2, clean_store_chain(5, /*start=*/10));
  p.close(2);
  svc.stop();
  const auto rep2 = svc.report(2);
  ASSERT_TRUE(rep2.has_value());
  EXPECT_EQ(rep2->state, StreamState::Closed);
  EXPECT_GT(svc.stats().discarded_events, 0u);
}

TEST(StreamService, ImplicitFinalStepOnClose) {
  StreamService svc(StreamServiceOptions{});
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  p.symbol(1, NodeDesc{1, make_store(0, 0, 1)});
  p.close(1);  // no step_end: the trailing symbols form the final step
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Closed);
  EXPECT_EQ(rep->steps, 1u);
  EXPECT_EQ(rep->symbols, 1u);
}

// -------------------------------------------------- excerpt replayability

TEST(StreamService, QuarantineExcerptReplaysToSameReject) {
  StreamServiceOptions opt;
  opt.excerpt_window = 4;
  StreamService svc(opt);
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  constexpr std::size_t kClean = 20;  // forces several window rotations
  feed_steps(p, 1, clean_store_chain(kClean));
  feed_steps(p, 1, {violating_step(kClean)});
  svc.stop();

  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  ASSERT_EQ(rep->state, StreamState::Quarantined);
  ASSERT_TRUE(rep->excerpt.has_value());
  const RunTrace& ex = *rep->excerpt;
  EXPECT_EQ(ex.verdict, RunVerdict::Violation);
  EXPECT_EQ(ex.reason, rep->reason);
  EXPECT_TRUE(ex.has_base()) << "rotations happened, base snapshot required";
  EXPECT_GT(ex.dropped_steps, 0u);
  EXPECT_LE(ex.steps.size(), 2 * opt.excerpt_window + 1);
  EXPECT_EQ(ex.dropped_steps + ex.steps.size(), kClean + 1);

  // The excerpt replays to the byte-identical reject, offline.
  const TraceCheckResult r = check_trace(ex);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reject_reason, rep->reason);

  // And survives the v3 wire format round trip.
  ByteWriter w;
  serialize_run_trace(ex, w);
  ASSERT_GT(w.data().size(), 6u);
  EXPECT_EQ(w.data()[4], 3) << "base-carrying trace must be version 3";
  RunTrace back;
  std::string error;
  ASSERT_TRUE(parse_run_trace(w.data(), back, error)) << error;
  EXPECT_EQ(back, ex);
  const TraceCheckResult r2 = check_trace(back);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.reject_reason, rep->reason);
}

TEST(StreamService, EarlyViolationExcerptHasNoBaseAndStaysV2) {
  StreamService svc(StreamServiceOptions{});  // window 32, no rotation in 5
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  feed_steps(p, 1, clean_store_chain(5));
  feed_steps(p, 1, {violating_step(5)});
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  ASSERT_TRUE(rep->excerpt.has_value());
  const RunTrace& ex = *rep->excerpt;
  EXPECT_FALSE(ex.has_base());
  EXPECT_EQ(ex.steps.size(), 6u) << "full history fits: every step kept";
  ByteWriter w;
  serialize_run_trace(ex, w);
  EXPECT_EQ(w.data()[4], 2) << "no base: byte-compatible version 2";
  const TraceCheckResult r = check_trace(ex);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reject_reason, rep->reason);
}

// ----------------------------------------------- differential vs batch
//
// The acceptance bar: for every registry protocol, the service verdict on
// a recorded walk is byte-identical (verdict AND reason) to offline
// check_trace, at 1 and at 4 worker threads.

struct Differential {
  bool accepted = false;
  std::string reason;
};

Differential offline_verdict(const RunTrace& trace) {
  const TraceCheckResult r = check_trace(trace);
  EXPECT_TRUE(r.ok) << r.error;
  return {r.accepted, r.reject_reason};
}

Differential service_verdict(const RunTrace& trace, std::size_t producers,
                             std::size_t workers) {
  StreamServiceOptions opt;
  opt.producers = producers;
  opt.workers = workers;
  StreamService svc(opt);
  svc.start();
  StreamService::Producer p = svc.producer(0);
  p.open(1, trace.checker);
  feed_steps(p, 1, trace.steps);
  p.close(1);
  svc.stop();
  const auto rep = svc.report(1);
  EXPECT_TRUE(rep.has_value());
  if (!rep.has_value()) return {};
  return {rep->state == StreamState::Closed, rep->reason};
}

TEST(StreamDifferential, RegistryWalksMatchBatchCheckerAt1And4Workers) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const std::unique_ptr<Protocol> proto = entry.make();
    RecordWalkOptions opt;
    opt.steps = 250;
    opt.seed = 11;
    const RunTrace walk = record_walk(*proto, opt);
    const Differential want = offline_verdict(walk);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      const Differential got = service_verdict(walk, 4, workers);
      EXPECT_EQ(got.accepted, want.accepted)
          << entry.id << " @ " << workers << " workers";
      EXPECT_EQ(got.reason, want.reason)
          << entry.id << " @ " << workers << " workers";
    }
  }
}

TEST(StreamDifferential, CounterexampleQuarantinesWithBatchReason) {
  const std::unique_ptr<Protocol> proto =
      make_registered_protocol("write_buffer");
  ASSERT_NE(proto, nullptr);
  McOptions opt;
  opt.record_counterexample = true;
  const McResult r = model_check(*proto, opt);
  ASSERT_EQ(r.verdict, McVerdict::Violation) << r.summary();
  ASSERT_TRUE(r.counterexample_trace.has_value());
  const RunTrace& trace = *r.counterexample_trace;

  const Differential want = offline_verdict(trace);
  ASSERT_FALSE(want.accepted);
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    const Differential got = service_verdict(trace, 4, workers);
    EXPECT_FALSE(got.accepted);
    EXPECT_EQ(got.reason, want.reason) << workers << " workers";
  }
}

TEST(StreamDifferential, ModelAxisMatchesBatchChecker) {
  const std::unique_ptr<Protocol> proto =
      make_registered_protocol("serial_memory");
  ASSERT_NE(proto, nullptr);
  for (const MemoryModel& m :
       {MemoryModel::sc(), MemoryModel::tso(), MemoryModel::coherence()}) {
    RecordWalkOptions opt;
    opt.steps = 200;
    opt.observer.model = m;
    const RunTrace walk = record_walk(*proto, opt);
    const Differential want = offline_verdict(walk);
    const Differential got = service_verdict(walk, 1, 0);
    EXPECT_EQ(got.accepted, want.accepted);
    EXPECT_EQ(got.reason, want.reason);
  }
}

// ----------------------------------------------- zero-allocation paths

TEST(StreamAllocation, SteadyStateSymbolPathIsAllocationFree) {
  StreamService svc(StreamServiceOptions{});  // poll mode: single thread
  StreamService::Producer p = svc.producer(0);
  p.open(1, small_config());
  // Warm every buffer: past one full double-window rotation cycle, ring
  // slots touched, step vectors at capacity.
  const std::vector<RunStep> chain = clean_store_chain(400);
  for (std::size_t j = 0; j < 100; ++j) {
    for (const Symbol& sym : chain[j].symbols) p.symbol(1, sym);
    p.step_end(1);
    while (svc.poll() != 0) {
    }
  }
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t j = 100; j < 400; ++j) {
    for (const Symbol& sym : chain[j].symbols) p.symbol(1, sym);
    p.step_end(1);
    while (svc.poll() != 0) {
    }
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state ingest must not touch the heap";
  p.close(1);
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Closed);
}

TEST(StreamAllocation, SnapshotRestoreCycleIsAllocationFree) {
  ScChecker checker(small_config());
  for (const RunStep& s : clean_store_chain(10)) {
    ASSERT_EQ(checker.feed_batch(s.symbols), Status::Ok);
  }
  ByteWriter w;
  checker.snapshot(w);  // warm the writer's capacity
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    w.clear();
    checker.snapshot(w);
    ByteReader r(w.data());
    checker.restore(r);
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "snapshot/restore with a reused writer must not allocate";
}

// ------------------------------------------- malformed SCVR diagnostics

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b,
                 std::size_t limit) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(b.data(), 1, std::min(limit, b.size()), f),
            std::min(limit, b.size()));
  std::fclose(f);
}

RunTrace crafted_trace(std::size_t steps) {
  RunTrace t;
  t.protocol = "crafted";
  t.checker = small_config();
  t.verdict = RunVerdict::Accepted;
  t.steps = clean_store_chain(steps);
  return t;
}

TEST(StreamIngestDiagnostics, TruncatedMidRecordReportsStepContext) {
  const RunTrace t = crafted_trace(30);
  ByteWriter w;
  serialize_run_trace(t, w);
  const std::string path = temp_path("truncated.scvr");
  write_bytes(path, w.data(), w.data().size() - 3);

  TraceStreamReader reader(path);
  ASSERT_TRUE(reader.ok()) << "header parses; the damage is mid-stream";
  RunStep step;
  std::size_t fed = 0;
  while (reader.next(step)) ++fed;
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("step"), std::string::npos)
      << reader.error();
  EXPECT_LT(fed, t.steps.size());

  // The same file through service ingest: diagnostic surfaced, the fed
  // prefix still gets a verdict.
  StreamService svc(StreamServiceOptions{});
  TraceStreamReader reader2(path);
  std::string error;
  EXPECT_FALSE(ingest_trace(reader2, svc.producer(0), 1, error));
  EXPECT_NE(error.find("step"), std::string::npos) << error;
  svc.stop();
  const auto rep = svc.report(1);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->state, StreamState::Closed);
  EXPECT_EQ(rep->steps, fed);
}

TEST(StreamIngestDiagnostics, TornHeaderReportsCleanly) {
  const RunTrace t = crafted_trace(5);
  ByteWriter w;
  serialize_run_trace(t, w);
  const std::string path = temp_path("torn.scvr");
  write_bytes(path, w.data(), 7);  // magic + version + one header byte

  TraceStreamReader reader(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos)
      << reader.error();

  StreamService svc(StreamServiceOptions{});
  TraceStreamReader reader2(path);
  std::string error;
  EXPECT_FALSE(ingest_trace(reader2, svc.producer(0), 1, error));
  EXPECT_EQ(error, reader.error()) << "same diagnostic on both paths";
  svc.stop();
  EXPECT_FALSE(svc.report(1).has_value()) << "stream never opened";
}

TEST(StreamIngestDiagnostics, ExcerptBaseTracesRefuseReingestion) {
  RunTrace t = crafted_trace(3);
  t.base_state = {1, 2, 3};  // any base marks it as an excerpt
  t.dropped_steps = 7;
  ByteWriter w;
  serialize_run_trace(t, w);
  const std::string path = temp_path("excerpt.scvr");
  write_bytes(path, w.data(), w.data().size());

  StreamService svc(StreamServiceOptions{});
  TraceStreamReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::string error;
  EXPECT_FALSE(ingest_trace(reader, svc.producer(0), 1, error));
  EXPECT_NE(error.find("excerpt base"), std::string::npos) << error;
  svc.stop();
}

// Chunked reading equals batch reading, byte for byte, on a trace larger
// than one refill chunk (TraceStreamReader::kChunkBytes = 64 KiB).

TEST(StreamIngestDiagnostics, ChunkedReaderMatchesBatchOnLargeTrace) {
  const std::unique_ptr<Protocol> proto =
      make_registered_protocol("msi_bus");
  ASSERT_NE(proto, nullptr);
  RecordWalkOptions opt;
  opt.steps = 20000;  // ~100+ KiB serialized: several refill cycles
  const RunTrace walk = record_walk(*proto, opt);
  const std::string path = temp_path("large.scvr");
  std::string error;
  ASSERT_TRUE(write_run_trace(path, walk, error)) << error;

  TraceStreamReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  const TraceCheckResult streamed = check_trace_stream(reader);
  ASSERT_TRUE(streamed.ok) << streamed.error;
  const TraceCheckResult batch = check_trace(walk);
  EXPECT_EQ(streamed.accepted, batch.accepted);
  EXPECT_EQ(streamed.reject_reason, batch.reject_reason);
  EXPECT_EQ(streamed.steps_fed, batch.steps_fed);
  EXPECT_EQ(streamed.symbols_fed, batch.symbols_fed);
}

}  // namespace
}  // namespace scv
