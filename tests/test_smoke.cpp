// End-to-end smoke tests: one pass through every layer of the pipeline.
// The per-module suites exercise each layer in depth; this file exists so
// that a fundamental breakage anywhere surfaces as a small, readable
// failure here first.
#include <gtest/gtest.h>

#include "core/trace_tester.hpp"
#include "core/verifier.hpp"
#include "descriptor/descriptor.hpp"
#include "checker/cycle_checker.hpp"
#include "checker/sc_checker.hpp"
#include "graph/constraint_graph.hpp"
#include "litmus/litmus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"
#include "trace/sc_oracle.hpp"

namespace scv {
namespace {

TEST(Smoke, Figure3GraphIsValidAcyclicBandwidth3) {
  const Fig3Example ex = figure3_example();
  EXPECT_EQ(ex.graph.validate(), std::nullopt);
  EXPECT_TRUE(ex.graph.acyclic());
  EXPECT_EQ(ex.graph.node_bandwidth(), 3u);
}

TEST(Smoke, Figure3DescriptorRoundTripsAndPassesCycleChecker) {
  const Fig3Example ex = figure3_example();
  std::vector<std::optional<Operation>> labels;
  for (const Operation& op : ex.trace) labels.emplace_back(op);

  const Descriptor desc =
      descriptor_for_graph(ex.graph.digraph(), 3, &labels);
  const ExpansionResult expansion = expand(desc);
  ASSERT_TRUE(expansion.graph.has_value()) << expansion.error;
  EXPECT_TRUE(expansion.graph->graph.same_edges(ex.graph.digraph()));

  CycleChecker checker(3);
  for (const Symbol& sym : desc.symbols) {
    ASSERT_EQ(checker.feed(sym), CycleChecker::Status::Ok)
        << checker.reject_reason();
  }
}

TEST(Smoke, OracleAcceptsScTraceRejectsCyclicTrace) {
  ScOracle oracle;
  // The Figure 3 trace is SC.
  const Fig3Example ex = figure3_example();
  EXPECT_TRUE(oracle.has_serial_reordering(ex.trace));
  // Store-buffering shape: not SC.
  const Trace sb{
      make_store(0, 0, 1), make_load(0, 1, kBottom),
      make_store(1, 1, 1), make_load(1, 0, kBottom),
  };
  EXPECT_FALSE(oracle.has_serial_reordering(sb));
}

TEST(Smoke, VerifierProvesSerialMemory) {
  SerialMemory proto(2, 1, 1);
  const McResult result = verify_sc(proto);
  EXPECT_EQ(result.verdict, McVerdict::Verified) << result.summary();
  EXPECT_GT(result.states, 1u);
}

TEST(Smoke, VerifierFindsWriteBufferViolation) {
  WriteBuffer proto(2, 2, 1, /*depth=*/1, /*forwarding=*/false);
  const McResult result = verify_sc(proto);
  EXPECT_EQ(result.verdict, McVerdict::Violation) << result.summary();
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(Smoke, TraceTesterPassesSerialMemory) {
  SerialMemory proto(2, 2, 2);
  TraceTestOptions opt;
  opt.max_steps = 2000;
  const TraceTestResult result = trace_test(proto, opt);
  EXPECT_EQ(result.verdict, TraceVerdict::Passed) << result.summary();
}

TEST(Smoke, Figure1Outcomes) {
  const LitmusProgram prog = figure1_program();
  const LitmusOutcome serial = serial_outcome(prog);
  EXPECT_EQ(serial, (LitmusOutcome{1, 2}));  // r1 = 1, r2 = 2

  const auto sc = sc_outcomes(prog);
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 2}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{0, 0}));
  EXPECT_TRUE(sc.contains(LitmusOutcome{1, 0}));
  EXPECT_FALSE(sc.contains(LitmusOutcome{0, 2}));

  RelaxFlags rmo;
  rmo.load_load = true;
  const auto relaxed = relaxed_outcomes(prog, rmo);
  EXPECT_TRUE(relaxed.contains(LitmusOutcome{0, 2}));
}

}  // namespace
}  // namespace scv
