// Tests for the shared static-analysis IR (DESIGN.md §15): the skeleton
// enumeration against a reference BFS, the dataflow solvers on hand-built
// graphs, the POR-footprint inference and its R7/R8 lint rules against
// deliberately wrong declarations, and whole-run parity between declared
// and inferred footprints feeding the model checker's ample selector.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/footprint_infer.hpp"
#include "analysis/lint.hpp"
#include "analysis/skeleton.hpp"
#include "mc/model_checker.hpp"
#include "protocol/directory.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/registry.hpp"
#include "protocol/serial_memory.hpp"
#include "runlog/run_trace.hpp"
#include "util/byte_io.hpp"

namespace scv {
namespace {

using analysis::build_skeleton;
using analysis::DataflowProblem;
using analysis::FlowEdge;
using analysis::infer_por;
using analysis::LocSet;
using analysis::ProtocolSkeleton;
using analysis::Transfer;

// ------------------------------------------------- skeleton vs reference

/// Plain reference enumeration: BFS with an unordered_set of serialized
/// states, counting states and enumerated transitions.  The skeleton build
/// (arena + open-addressed index + CSR) must agree exactly.
void reference_counts(const Protocol& proto, std::size_t* states,
                      std::size_t* edges) {
  const std::size_t sb = proto.state_size();
  std::vector<std::uint8_t> init(sb);
  proto.initial_state(init);
  std::unordered_set<std::string> seen;
  std::vector<std::string> frontier;
  seen.insert(std::string(init.begin(), init.end()));
  frontier.push_back(std::string(init.begin(), init.end()));
  std::size_t nedges = 0;
  std::vector<Transition> ts;
  std::vector<std::uint8_t> succ(sb);
  for (std::size_t cursor = 0; cursor < frontier.size(); ++cursor) {
    const std::string cur = frontier[cursor];
    ts.clear();
    proto.enumerate(
        {reinterpret_cast<const std::uint8_t*>(cur.data()), sb}, ts);
    for (const Transition& t : ts) {
      std::memcpy(succ.data(), cur.data(), sb);
      proto.apply(succ, t);
      ++nedges;
      std::string key(succ.begin(), succ.end());
      if (seen.insert(key).second) frontier.push_back(std::move(key));
    }
  }
  *states = seen.size();
  *edges = nedges;
}

TEST(Skeleton, MatchesReferenceEnumerationAcrossRegistry) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const ProtocolSkeleton sk = build_skeleton(*proto);
    ASSERT_TRUE(sk.complete) << entry.id;
    std::size_t ref_states = 0;
    std::size_t ref_edges = 0;
    reference_counts(*proto, &ref_states, &ref_edges);
    EXPECT_EQ(sk.num_states(), ref_states) << entry.id;
    EXPECT_EQ(sk.edges.size(), ref_edges) << entry.id;
    // CSR integrity: every edge target is a real state (complete build) and
    // shape occurrence counters add back up to the edge count.
    std::size_t occurrences = 0;
    for (const analysis::TransitionShape& s : sk.shapes) {
      occurrences += s.occurrences;
      EXPECT_EQ(sk.find_shape(s.key),
                static_cast<std::uint32_t>(&s - sk.shapes.data()))
          << entry.id;
    }
    EXPECT_EQ(occurrences, sk.edges.size()) << entry.id;
    for (const analysis::SkeletonEdge& e : sk.edges) {
      ASSERT_LT(e.to, sk.num_states()) << entry.id;
      ASSERT_LT(e.shape, sk.shapes.size()) << entry.id;
    }
  }
}

TEST(Skeleton, TruncationIsReportedNotSilent) {
  const auto proto = make_registered_protocol("msi_bus");
  analysis::SkeletonBuildOptions opt;
  opt.max_states = 100;
  const ProtocolSkeleton sk = build_skeleton(*proto, opt);
  EXPECT_FALSE(sk.complete);
  EXPECT_LE(sk.num_states(), 100u);
  // Edges past the cap keep their shape with an npos target.
  bool saw_npos = false;
  for (const analysis::SkeletonEdge& e : sk.edges) {
    saw_npos |= e.to == ProtocolSkeleton::npos;
  }
  EXPECT_TRUE(saw_npos);
}

TEST(Skeleton, EffectSetsFollowTrackingLabels) {
  const SerialMemory proto(2, 2, 1);
  const ProtocolSkeleton sk = build_skeleton(proto);
  ASSERT_TRUE(sk.complete);
  bool saw_load = false;
  bool saw_store = false;
  for (const analysis::TransitionShape& s : sk.shapes) {
    if (!s.rep.action.is_memory_op()) continue;
    EXPECT_TRUE(s.statically_visible);
    if (s.rep.action.kind == Action::Kind::Load) {
      saw_load = true;
      EXPECT_TRUE(s.reads.test(s.rep.loc));
      EXPECT_TRUE(s.writes.empty());
    } else {
      saw_store = true;
      EXPECT_TRUE(s.writes.test(s.rep.loc));
    }
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_store);
}

// ------------------------------------------------------ dataflow solvers

/// Diamond:  0 -a-> 1 -b-> 3,  0 -c-> 2 -d-> 3.  Forward-may facts must
/// union over the two paths, with kills applied per-edge.
TEST(Dataflow, ForwardMayUnionsPaths) {
  DataflowProblem p;
  p.num_nodes = 4;
  Transfer a;  // gen {1}
  a.gen.set(1);
  Transfer b;  // gen {2}, kill {1}
  b.gen.set(2);
  b.kill.set(1);
  Transfer c;  // gen {3}
  c.gen.set(3);
  Transfer d;  // identity
  p.transfers = {a, b, c, d};
  p.edges = {{0, 1, 0}, {1, 3, 1}, {0, 2, 2}, {2, 3, 3}};
  const std::vector<LocSet> fact = analysis::solve_forward_may(p);
  EXPECT_TRUE(fact[1].test(1));
  EXPECT_TRUE(fact[2].test(3));
  // At the join: {2} from the top path (1 was killed) ∪ {3} from the
  // bottom path; 1 must NOT leak through edge b's kill.
  EXPECT_TRUE(fact[3].test(2));
  EXPECT_TRUE(fact[3].test(3));
  EXPECT_FALSE(fact[3].test(1));
}

/// Cycle: 0 -> 1 -> 2 -> 1 (loop), gen at the loop edge.  The fixpoint must
/// terminate and propagate the loop-generated fact into every node of the
/// cycle, but not backwards into node 0.
TEST(Dataflow, ForwardMayReachesFixpointOnCycle) {
  DataflowProblem p;
  p.num_nodes = 3;
  Transfer id;
  Transfer gen5;
  gen5.gen.set(5);
  p.transfers = {id, gen5};
  p.edges = {{0, 1, 0}, {1, 2, 1}, {2, 1, 0}};
  const std::vector<LocSet> fact = analysis::solve_forward_may(p);
  EXPECT_FALSE(fact[0].test(5));
  EXPECT_TRUE(fact[1].test(5));  // flows around the cycle back into 1
  EXPECT_TRUE(fact[2].test(5));
}

/// Chain 0 -a-> 1 -b-> 2 where edge b reads {7} and edge a writes {7}: the
/// backward liveness fact at node 1 must contain 7 (a read is ahead), the
/// fact at node 0 must not (edge a's write kills it before the read... the
/// kill applies to facts flowing backward THROUGH the edge, gen applies at
/// its source).
TEST(Dataflow, BackwardMayLiveness) {
  DataflowProblem p;
  p.num_nodes = 3;
  Transfer a;  // writes {7}: kill
  a.kill.set(7);
  Transfer b;  // reads {7}: gen
  b.gen.set(7);
  p.transfers = {a, b};
  p.edges = {{0, 1, 0}, {1, 2, 1}};
  const std::vector<LocSet> fact = analysis::solve_backward_may(p);
  EXPECT_TRUE(fact[1].test(7));
  EXPECT_FALSE(fact[0].test(7));
  EXPECT_FALSE(fact[2].test(7));
}

TEST(Dataflow, EntrySeedsAreRespected) {
  DataflowProblem p;
  p.num_nodes = 2;
  Transfer id;
  p.transfers = {id};
  p.edges = {{0, 1, 0}};
  p.entry.resize(2);
  p.entry[0].set(4);
  const std::vector<LocSet> fwd = analysis::solve_forward_may(p);
  EXPECT_TRUE(fwd[0].test(4));
  EXPECT_TRUE(fwd[1].test(4));
}

/// The occupancy instantiation on a real protocol: the maximal
/// simultaneously-occupied location count can only tighten (never exceed)
/// the static location count, and on the directory protocol it genuinely
/// does — that slack is what the R3 refinement reports.
TEST(Dataflow, OccupancyTightensDirectoryBound) {
  const auto proto = make_registered_protocol("directory");
  const ProtocolSkeleton sk = build_skeleton(*proto);
  ASSERT_TRUE(sk.complete);
  const std::vector<LocSet> occ =
      analysis::solve_forward_may(analysis::occupancy_problem(sk));
  int max_occ = 0;
  for (const LocSet& f : occ) max_occ = std::max(max_occ, f.count());
  EXPECT_GT(max_occ, 0);
  EXPECT_LT(static_cast<std::size_t>(max_occ), proto->params().locations);
}

// ---------------------------------------------------- inference + mutants

TEST(Inference, UsableAndDefiniteAcrossRegistry) {
  for (const RegisteredProtocol& entry : protocol_registry()) {
    const auto proto = entry.make();
    const ProtocolSkeleton sk = build_skeleton(*proto);
    const analysis::InferredPor inf = infer_por(sk);
    EXPECT_TRUE(inf.relation_definite) << entry.id;
    EXPECT_TRUE(inf.invisibility_definite) << entry.id;
    EXPECT_TRUE(inf.usable) << entry.id << ": " << inf.note;
    ASSERT_EQ(inf.footprints.size(), sk.shapes.size()) << entry.id;
    for (std::size_t s = 0; s < sk.shapes.size(); ++s) {
      if (inf.invisible[s] && std::has_single_bit(inf.proc_support[s])) {
        // Ample candidate: the footprint names its one processor and is
        // marked invisible.
        EXPECT_FALSE(inf.footprints[s].visible) << entry.id;
        EXPECT_EQ(inf.footprints[s].procs, inf.proc_support[s]) << entry.id;
      } else {
        // Everything else conflicts with everything (sound default).
        EXPECT_EQ(inf.footprints[s].procs, ~0u) << entry.id;
        EXPECT_TRUE(inf.footprints[s].visible) << entry.id;
      }
    }
  }
}

TEST(Inference, MsiBusEvictIsInvisibleSingleProcessor) {
  const auto proto = make_registered_protocol("msi_bus");
  const ProtocolSkeleton sk = build_skeleton(*proto);
  const analysis::InferredPor inf = infer_por(sk);
  ASSERT_TRUE(inf.usable) << inf.note;
  // Invisible shapes with a single-processor support are the ample
  // candidates; on the bus protocol those are exactly the cache evictions
  // (BusGetX is also invisible but touches both processors' snoop state).
  std::size_t candidates = 0;
  for (std::size_t s = 0; s < sk.shapes.size(); ++s) {
    if (!inf.invisible[s] || !std::has_single_bit(inf.proc_support[s])) {
      continue;
    }
    ++candidates;
    const std::string an = proto->action_name(sk.shapes[s].rep.action);
    EXPECT_NE(an.find("Evict"), std::string::npos) << an;
  }
  EXPECT_GT(candidates, 0u);
}

/// Forwards the wrapped directory protocol faithfully — including its POR
/// opt-in — so the exhaustive R7/R8 passes see a protocol they can judge.
class PorForwardingWrapper : public Protocol {
 public:
  PorForwardingWrapper() : inner_(2, 1, 2) {}
  [[nodiscard]] std::string name() const override {
    return "PorForwardingWrapper";
  }
  [[nodiscard]] const Params& params() const override {
    return inner_.params();
  }
  [[nodiscard]] std::size_t state_size() const override {
    return inner_.state_size();
  }
  void initial_state(std::span<std::uint8_t> state) const override {
    inner_.initial_state(state);
  }
  void enumerate(std::span<const std::uint8_t> state,
                 std::vector<Transition>& out) const override {
    inner_.enumerate(state, out);
  }
  void apply(std::span<std::uint8_t> state,
             const Transition& t) const override {
    inner_.apply(state, t);
  }
  [[nodiscard]] bool could_load_bottom(std::span<const std::uint8_t> state,
                                       BlockId b) const override {
    return inner_.could_load_bottom(state, b);
  }
  [[nodiscard]] std::string action_name(const Action& a) const override {
    return inner_.action_name(a);
  }
  // The inference reads processor support off proc_signature; without this
  // forward the default (empty) signature would hide every ample candidate.
  void proc_signature(std::span<const std::uint8_t> state, ProcId p,
                      ByteWriter& w) const override {
    inner_.proc_signature(state, p, w);
  }
  [[nodiscard]] bool por_enabled() const override { return true; }
  [[nodiscard]] PorFootprint por_footprint(const Transition& t) const override {
    return inner_.por_footprint(t);
  }
  [[nodiscard]] bool independent(const Transition& t,
                                 const Transition& u) const override {
    return inner_.independent(t, u);
  }

 protected:
  DirectoryProtocol inner_;
};

/// Over-coarse mutant: declares every footprint maximally conservative
/// (the everything-conflicts, observer-visible default).  Sound — it just
/// disables all reduction — which is exactly what R8 flags: the inference
/// proves some of those transitions invisible and single-processor.
class OverCoarseFootprintMutant final : public PorForwardingWrapper {
 public:
  [[nodiscard]] std::string name() const override {
    return "OverCoarseFootprintMutant";
  }
  [[nodiscard]] PorFootprint por_footprint(
      const Transition& /*t*/) const override {
    return PorFootprint{};  // procs/blocks/serializes = ~0, visible
  }
};

/// Unsound (over-fine) mutant: declares everything independent.  The
/// exhaustive relation has definite Dependent pairs, so R7 must fire as a
/// definite verdict, not sampled evidence.
class OverFineIndependenceMutant final : public PorForwardingWrapper {
 public:
  [[nodiscard]] std::string name() const override {
    return "OverFineIndependenceMutant";
  }
  [[nodiscard]] bool independent(const Transition& /*t*/,
                                 const Transition& /*u*/) const override {
    return true;
  }
};

TEST(Inference, OverCoarseFootprintsDrawR8Note) {
  const OverCoarseFootprintMutant proto;
  const LintReport report = lint_protocol(proto);
  EXPECT_TRUE(report.stats.rule(LintRule::R8_FootprintImprecision).ran);
  EXPECT_TRUE(report.stats.rule(LintRule::R8_FootprintImprecision).definite);
  std::size_t notes = 0;
  for (const LintFinding& f : report.findings) {
    if (f.rule != LintRule::R8_FootprintImprecision) continue;
    EXPECT_EQ(f.severity, LintSeverity::Note);
    EXPECT_NE(f.message.find("provably invisible"), std::string::npos)
        << f.message;
    ++notes;
  }
  EXPECT_GT(notes, 0u) << report.format();
  // The honest wrapper has nothing over-coarse to report at this
  // parameterization beyond what the real protocol declares.
  const PorForwardingWrapper honest;
  const LintReport clean = lint_protocol(honest);
  EXPECT_LE(clean.count(LintRule::R8_FootprintImprecision),
            report.count(LintRule::R8_FootprintImprecision));
}

TEST(Inference, OverFineIndependenceIsDefiniteR7) {
  const OverFineIndependenceMutant proto;
  const LintReport report = lint_protocol(proto);
  EXPECT_TRUE(report.stats.rule(LintRule::R7_Independence).ran);
  EXPECT_TRUE(report.stats.rule(LintRule::R7_Independence).definite);
  bool warned = false;
  for (const LintFinding& f : report.findings) {
    warned |= f.rule == LintRule::R7_Independence &&
              f.severity == LintSeverity::Warning;
  }
  EXPECT_TRUE(warned) << report.format();
}

// --------------------------------------- inferred vs declared POR parity

TEST(InferredPor, DirectoryParityWithDeclaredFootprints) {
  const DirectoryProtocol proto(3, 1, 1);
  McOptions declared;
  declared.max_depth = 12;
  McOptions inferred = declared;
  inferred.inferred_footprints = true;
  const McResult rd = model_check(proto, declared);
  const McResult ri = model_check(proto, inferred);
  ASSERT_EQ(rd.verdict, McVerdict::StateLimit) << rd.summary();
  ASSERT_EQ(ri.verdict, McVerdict::StateLimit) << ri.summary();
  EXPECT_TRUE(rd.por_active) << rd.por_note;
  EXPECT_TRUE(ri.por_active) << ri.por_note;
  EXPECT_EQ(rd.por_provenance, "declared");
  EXPECT_EQ(ri.por_provenance, "inferred");
  // Acceptance bound: within 5% of the declared-footprint reduction.  (The
  // runs are byte-identical in practice; the slack keeps the test honest if
  // the inferred relation legitimately tightens.)
  const double lo = static_cast<double>(rd.states) * 0.95;
  const double hi = static_cast<double>(rd.states) * 1.05;
  EXPECT_GE(static_cast<double>(ri.states), lo)
      << rd.states << " vs " << ri.states;
  EXPECT_LE(static_cast<double>(ri.states), hi)
      << rd.states << " vs " << ri.states;
}

TEST(InferredPor, ActivatesOnProtocolsWithNoDeclarations) {
  // lazy_caching never opted into POR; the inference must give it a usable
  // relation anyway, and the reduced run must agree with full expansion.
  const auto proto = make_registered_protocol("lazy_caching");
  ASSERT_FALSE(proto->por_enabled());
  McOptions inferred;
  inferred.max_states = 60'000;
  inferred.inferred_footprints = true;
  McOptions full = inferred;
  full.partial_order_reduction = false;
  const McResult ri = model_check(*proto, inferred);
  const McResult rf = model_check(*proto, full);
  EXPECT_TRUE(ri.por_active) << ri.por_note;
  EXPECT_EQ(ri.por_provenance, "inferred");
  EXPECT_EQ(ri.verdict, rf.verdict);
  EXPECT_LE(ri.states, rf.states);
}

TEST(InferredPor, CounterexampleByteParityOnBuggyMsi) {
  const auto proto = make_registered_protocol("msi_bus_buggy");
  McOptions declared;
  declared.max_states = 100'000;
  declared.record_counterexample = true;
  McOptions inferred = declared;
  inferred.inferred_footprints = true;
  const McResult rd = model_check(*proto, declared);
  const McResult ri = model_check(*proto, inferred);
  ASSERT_EQ(rd.verdict, McVerdict::Violation);
  ASSERT_EQ(ri.verdict, McVerdict::Violation);
  ASSERT_TRUE(rd.counterexample_trace.has_value());
  ASSERT_TRUE(ri.counterexample_trace.has_value());
  ByteWriter wa;
  ByteWriter wb;
  serialize_run_trace(*rd.counterexample_trace, wa);
  serialize_run_trace(*ri.counterexample_trace, wb);
  EXPECT_EQ(wa.data(), wb.data())
      << "inferred-footprint POR changed the recorded counterexample";
}

}  // namespace
}  // namespace scv
