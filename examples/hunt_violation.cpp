// Example: hunting a sequential-consistency bug.
//
// The per-processor store buffer (without ordering) is the canonical broken
// memory system: stores become visible to other processors late.  The
// verifier finds the shortest violating run automatically and explains it:
// the emitted constraint-graph descriptor contains the cycle predicted by
// Lemma 3.1.  We then show the same bug being caught by pure runtime
// monitoring (Section 5's testing scenario) on a much larger configuration.
//
// Run: ./build/examples/hunt_violation
#include <cstdio>

#include "core/trace_tester.hpp"
#include "core/verifier.hpp"
#include "protocol/write_buffer.hpp"

int main() {
  using namespace scv;

  // ---------------------------------------------------------------------
  // 1. Model checking digs out the store-buffering litmus by itself.
  // ---------------------------------------------------------------------
  WriteBuffer proto(/*procs=*/2, /*blocks=*/2, /*values=*/1, /*depth=*/1,
                    /*forwarding=*/true);
  std::printf("--- model checking %s ---\n", proto.name().c_str());
  const McResult r = verify_sc(proto);
  std::printf("%s\n\n", r.summary().c_str());
  if (r.verdict != McVerdict::Violation) return 1;

  std::printf("shortest counterexample run (with observer output):\n");
  for (const CounterexampleStep& step : r.counterexample) {
    std::printf("  %-16s |", step.action.c_str());
    for (const Symbol& s : step.emitted) {
      std::printf(" %s;", to_string(s).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nthe cycle (Lemma 3.1's witness of non-SC-ness):\n  ");
  for (const std::string& n : r.cycle) std::printf("%s -> ", n.c_str());
  std::printf("(back to start)\n");
  std::printf("\nreading the graph: each processor's buffered store is\n"
              "program-order-before its load of the other block, and each\n"
              "bottom-load is forced-before the other processor's store\n"
              "(constraint 5b) — a cycle, so no serial reordering exists.\n"
              "This is exactly the store-buffering litmus of Figure 1's\n"
              "discussion, rediscovered by the checker.\n\n");

  // ---------------------------------------------------------------------
  // 2. The same bug at scale, caught by runtime monitoring.
  // ---------------------------------------------------------------------
  WriteBuffer big(/*procs=*/4, /*blocks=*/4, /*values=*/2, /*depth=*/2,
                  /*forwarding=*/true);
  std::printf("--- runtime monitoring %s (p=4,b=4,v=2: far beyond "
              "exhaustive search) ---\n",
              big.name().c_str());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TraceTestOptions opt;
    opt.max_steps = 500000;
    opt.seed = seed;
    const TraceTestResult t = trace_test(big, opt);
    std::printf("  seed %2zu: %s\n", static_cast<std::size_t>(seed),
                t.summary().c_str());
    if (t.verdict == TraceVerdict::Violation) {
      std::printf("  last operations before detection:\n");
      const std::size_t start = t.tail.size() > 8 ? t.tail.size() - 8 : 0;
      for (std::size_t i = start; i < t.tail.size(); ++i) {
        std::printf("    %s\n", t.tail[i].c_str());
      }
      return 0;
    }
  }
  std::printf("runtime monitoring did not trigger in this budget\n");
  return 0;
}
