// Example: Lazy Caching and the nontrivial ST order generator.
//
// Afek, Brown & Merritt's Lazy Caching protocol is the paper's star
// witness for Section 4.2: it is sequentially consistent, but the serial
// order of stores is the order of *memory-write* events, not the order the
// ST operations execute — so the trivial "real-time" ST order generator
// does not apply.  This tour scripts a run where two stores serialize in
// the opposite order from their issue order, shows the STo edges the
// deferred generator emits, and then verifies the protocol exhaustively.
//
// Run: ./build/examples/lazy_caching_tour
#include <cstdio>
#include <functional>

#include "checker/sc_checker.hpp"
#include "core/verifier.hpp"
#include "observer/observer.hpp"
#include "protocol/lazy_caching.hpp"

namespace {

using namespace scv;

Transition pick(const Protocol& proto, std::span<const std::uint8_t> state,
                const std::function<bool(const Transition&)>& pred) {
  std::vector<Transition> ts;
  proto.enumerate(state, ts);
  for (const Transition& t : ts) {
    if (pred(t)) return t;
  }
  std::fprintf(stderr, "script out of sync with the protocol\n");
  std::abort();
}

}  // namespace

int main() {
  using namespace scv;
  LazyCaching proto(/*procs=*/2, /*blocks=*/1, /*values=*/2,
                    /*out_depth=*/1, /*in_depth=*/2);
  Observer obs(proto, {});
  ScChecker chk(ScCheckerConfig{obs.bandwidth(), 2, 1, 2});
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);

  std::printf("--- issue order vs serialization order ---\n");
  std::vector<Symbol> symbols;
  const auto drive = [&](const Transition& t) {
    proto.apply(state, t);
    symbols.clear();
    if (obs.step(t, state, symbols) != ObserverStatus::Ok) {
      std::printf("observer error: %s\n", obs.error().c_str());
      std::exit(1);
    }
    std::printf("%-16s |", proto.action_name(t.action).c_str());
    for (const Symbol& s : symbols) {
      std::printf(" %s;", to_string(s).c_str());
      if (chk.feed(s) == ScChecker::Status::Reject) {
        std::printf("\nchecker rejected: %s\n", chk.reject_reason().c_str());
        std::exit(1);
      }
    }
    std::printf("\n");
  };

  // P1 issues ST(B1,1) first, P2 issues ST(B1,2) second — but P2's
  // memory-write runs first, so the ST order is  ST(P2) -> ST(P1).
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.proc == 0 &&
           t.action.op.value == 1;
  }));
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Store && t.action.op.proc == 1 &&
           t.action.op.value == 2;
  }));
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Internal &&
           t.action.internal_id == LazyCaching::kMemWrite &&
           t.action.arg0 == 1;  // P2 serializes first!
  }));
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Internal &&
           t.action.internal_id == LazyCaching::kMemWrite &&
           t.action.arg0 == 0;  // P1 serializes second
  }));
  std::printf("\nNote the STo edge emitted at the *second* MemWrite: it\n"
              "orders ST(P2,B1,2) before ST(P1,B1,1) — the reverse of the\n"
              "issue order.  With the trivial real-time generator this run\n"
              "would be mis-ordered; the deferred generator of Section 4.2\n"
              "gets it right.\n\n");

  // Drain the update queues and let both processors read: they agree on
  // memory order (cache = memory = P1's value, serialized last).
  for (int i = 0; i < 8; ++i) {
    std::vector<Transition> ts;
    proto.enumerate(state, ts);
    const Transition* cu = nullptr;
    for (const Transition& t : ts) {
      if (t.action.kind == Action::Kind::Internal &&
          t.action.internal_id == LazyCaching::kCacheUpdate) {
        cu = &t;
        break;
      }
    }
    if (cu == nullptr) break;
    drive(*cu);
  }
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.proc == 0;
  }));
  drive(pick(proto, state, [](const Transition& t) {
    return t.action.kind == Action::Kind::Load && t.action.op.proc == 1;
  }));

  std::printf("\n--- exhaustive verification ---\n");
  const McResult r = verify_sc(proto);
  std::printf("%s\n", r.summary().c_str());
  return r.verdict == McVerdict::Verified ? 0 : 1;
}
