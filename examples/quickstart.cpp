// Quickstart: verify that a memory protocol is sequentially consistent.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
// The library's one-call entry point is scv::verify_sc: give it a protocol
// (a finite-state machine with storage locations and tracking labels,
// Section 4.1 of Condon & Hu 2001) and it constructs the witness observer
// of Theorem 4.1, runs the protocol–observer–checker product through an
// explicit-state model checker, and returns either a proof of sequential
// consistency or a shortest counterexample run.
#include <cstdio>

#include "core/verifier.hpp"
#include "protocol/msi_bus.hpp"
#include "protocol/serial_memory.hpp"
#include "protocol/write_buffer.hpp"

int main() {
  using namespace scv;

  // 1. A trivially correct protocol: atomic serial memory.
  {
    SerialMemory proto(/*procs=*/2, /*blocks=*/2, /*values=*/1);
    const McResult r = verify_sc(proto);
    std::printf("%-14s -> %s\n", proto.name().c_str(), r.summary().c_str());
  }

  // 2. A realistic protocol: snooping MSI caches on an atomic bus.
  {
    MsiBus proto(/*procs=*/2, /*blocks=*/1, /*values=*/2);
    const McResult r = verify_sc(proto);
    std::printf("%-14s -> %s\n", proto.name().c_str(), r.summary().c_str());
  }

  // 3. A broken protocol: store buffers without ordering.  The verifier
  //    returns the shortest run whose constraint graph is cyclic — the
  //    store-buffering litmus test, rediscovered automatically.
  {
    WriteBuffer proto(/*procs=*/2, /*blocks=*/2, /*values=*/1,
                      /*depth=*/1, /*forwarding=*/false);
    const McResult r = verify_sc(proto);
    std::printf("%-14s -> %s\n", proto.name().c_str(), r.summary().c_str());
    std::printf("  counterexample run:\n");
    for (const CounterexampleStep& step : r.counterexample) {
      std::printf("    %s\n", step.action.c_str());
    }
  }
  return 0;
}
