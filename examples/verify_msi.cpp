// Example: verifying a realistic cache-coherence protocol.
//
// This walks through the full method of Condon & Hu on the snooping MSI
// protocol: what the observer emits for a short scripted run, what the
// checker tracks, and then the exhaustive verification with statistics —
// including the state-space overhead relative to the bare protocol, the
// practical cost Section 4.4 of the paper discusses.
//
// Run: ./build/examples/verify_msi
#include <cstdio>

#include "checker/sc_checker.hpp"
#include "core/verifier.hpp"
#include "observer/observer.hpp"
#include "protocol/msi_bus.hpp"
#include "util/rng.hpp"

int main() {
  using namespace scv;
  MsiBus proto(/*procs=*/2, /*blocks=*/1, /*values=*/2);

  // ---------------------------------------------------------------------
  // 1. Watch the observer annotate a short random run.
  // ---------------------------------------------------------------------
  std::printf("--- observer output on a short run of %s ---\n",
              proto.name().c_str());
  Observer obs(proto, {});
  ScChecker chk(ScCheckerConfig{obs.bandwidth(), 2, 1, 2});
  Xoshiro256 rng(2);
  std::vector<std::uint8_t> state(proto.state_size());
  proto.initial_state(state);
  std::vector<Transition> enabled;
  std::vector<Symbol> symbols;
  for (int step = 0; step < 14; ++step) {
    enabled.clear();
    proto.enumerate(state, enabled);
    const Transition t = enabled[rng.below(enabled.size())];
    proto.apply(state, t);
    symbols.clear();
    if (obs.step(t, state, symbols) != ObserverStatus::Ok) {
      std::printf("observer error: %s\n", obs.error().c_str());
      return 1;
    }
    std::printf("%-18s |", proto.action_name(t.action).c_str());
    for (const Symbol& s : symbols) {
      std::printf(" %s;", to_string(s).c_str());
      if (chk.feed(s) == ScChecker::Status::Reject) {
        std::printf("\nchecker rejected: %s\n", chk.reject_reason().c_str());
        return 1;
      }
    }
    std::printf("\n");
  }
  std::printf("(active graph: %zu observer nodes, %zu checker nodes)\n\n",
              obs.live_nodes(), chk.active_nodes());

  // ---------------------------------------------------------------------
  // 2. Exhaustive verification: protocol x observer x checker product.
  // ---------------------------------------------------------------------
  std::printf("--- exhaustive verification ---\n");
  McOptions bare;
  bare.protocol_only = true;
  const McResult rb = model_check(proto, bare);
  const McResult rf = verify_sc(proto);
  std::printf("bare protocol : %s\n", rb.summary().c_str());
  std::printf("full product  : %s\n", rf.summary().c_str());
  std::printf("observer size : bound %zu bits (Sec. 4.4), product state %zu "
              "bytes\n",
              observer_size_bound_bits(2, 1, 2, proto.params().locations),
              rf.state_bytes);
  if (rf.verdict == McVerdict::Verified) {
    std::printf("\nMsiBus(p=2,b=1,v=2) is sequentially consistent: every "
                "reachable run\nof the observer describes an acyclic "
                "constraint graph.\n");
  }
  return rf.verdict == McVerdict::Verified ? 0 : 1;
}
