// Example: using the observer + checker as a pure runtime monitor.
//
// Section 5 of the paper points out that the finite-state observer and
// checker "could be simulated together with detailed implementation
// descriptions that are too complex for formal verification" — i.e. used
// as a Gibbons–Korach-style testing harness.  This example monitors three
// protocols at parameters whose product state spaces are astronomically
// beyond exhaustive search, reporting throughput, and demonstrates that
// the monitor is deterministic and replayable from a seed.
//
// Run: ./build/examples/runtime_monitor [steps]
#include <cstdio>
#include <cstdlib>

#include "core/trace_tester.hpp"
#include "protocol/directory.hpp"
#include "protocol/lazy_caching.hpp"
#include "protocol/msi_bus.hpp"

int main(int argc, char** argv) {
  using namespace scv;
  const std::uint64_t steps =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  MsiBus msi(/*procs=*/6, /*blocks=*/6, /*values=*/4);
  DirectoryProtocol dir(/*procs=*/6, /*blocks=*/4, /*values=*/4);
  LazyCaching lazy(/*procs=*/4, /*blocks=*/4, /*values=*/4,
                   /*out_depth=*/2, /*in_depth=*/6);

  std::printf("monitoring %llu random steps per protocol "
              "(observer+checker inline)\n\n",
              static_cast<unsigned long long>(steps));
  for (const Protocol* proto :
       std::initializer_list<const Protocol*>{&msi, &dir, &lazy}) {
    TraceTestOptions opt;
    opt.max_steps = steps;
    opt.seed = 20260708;
    const TraceTestResult r = trace_test(*proto, opt);
    std::printf("%-14s (p=%zu b=%zu v=%zu, L=%zu): %s\n",
                proto->name().c_str(), proto->params().procs,
                proto->params().blocks, proto->params().values,
                proto->params().locations, r.summary().c_str());
    if (r.verdict != TraceVerdict::Passed) {
      std::printf("  reason: %s\n  last operations:\n", r.reason.c_str());
      for (const std::string& a : r.tail) std::printf("    %s\n", a.c_str());
      return 1;
    }
  }
  std::printf("\nall runs passed: no sequential-consistency violation "
              "observed.\n");
  return 0;
}
